#include "phy/medium.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include "metrics/profiler.hpp"
#include "sim/strfmt.hpp"

namespace rmacsim {

Medium::Medium(Scheduler& scheduler, PhyParams params, Rng rng, Tracer* tracer)
    : params_{params},
      scheduler_{scheduler},
      rng_{rng},
      tracer_{tracer},
      index_{params_.effective_interference_range()} {}

void Medium::attach(Radio& radio) {
  radios_by_id_[radio.id()] = &radio;
  index_.insert(radio.id(), radio.mobility(), &radio);
}

void Medium::detach(Radio& radio) noexcept {
  radios_by_id_.erase(radio.id());
  index_.remove(radio.id());
  // A radio can vanish mid-flight (teardown, scripted failure).  Its own
  // transmission truncates on the air exactly like an abort — receivers get
  // a corrupt partial frame — but without callbacks into the dying radio.
  const TxHandle own = radio.medium_tx_handle();
  if (own != 0) {
    Transmission& t = slot_of(own);
    t.aborted = true;
    if (scheduler_.cancel(t.done_event)) --t.pending;
    truncate_groups(own, t);
    t.finished = true;
    radio.set_medium_tx_handle(0);
    maybe_recycle(own);
  }
  // Null every in-flight reception addressed to the detached radio: the
  // shared group events keep firing for the other members and skip the dead
  // entry, so no scheduled closure dereferences it.
  for (Transmission& t : slots_) {
    if (!t.live) continue;
    for (Reception& rc : t.receptions) {
      if (rc.rx == &radio) rc.rx = nullptr;
    }
  }
}

void Medium::collect_candidates(Vec2 origin, double radius, SimTime now,
                                const Radio* exclude) const {
  scratch_.clear();
  index_.prepare(now);
  soa_.sync(index_);
  soa_.for_each_in_disk(index_, origin, radius, now, [&](std::uint32_t k, double d2) {
    Radio* rx = static_cast<Radio*>(soa_.payloads()[k]);
    if (rx != exclude) scratch_.push_back(Candidate{rx, soa_.ids()[k], d2});
  });
  // Load-bearing sort, not a belt-and-braces one: the SoA sweep visits cells
  // row-major and lanes within a cell in CSR order (unspecified, so rebuilds
  // stay cheap).  Signal ids, scheduler sequence tie-breaks, and BER draws
  // must be assigned in a platform-independent order, so candidates are put
  // into ascending-NodeId order first.
  std::sort(scratch_.begin(), scratch_.end(),
            [](const Candidate& a, const Candidate& b) { return a.id < b.id; });
}

std::span<const NodeId> Medium::neighbours_of(NodeId of) const {
  neighbour_scratch_.clear();
  const auto it = radios_by_id_.find(of);
  if (it == radios_by_id_.end()) return {};
  Radio* self = it->second;
  index_.for_each_in_range(self->position(), params_.range_m, scheduler_.now(),
                           [&](NodeId id, void* payload, Vec2, double) {
                             if (static_cast<Radio*>(payload) != self) {
                               neighbour_scratch_.push_back(id);
                             }
                           });
  std::sort(neighbour_scratch_.begin(), neighbour_scratch_.end());
  return neighbour_scratch_;
}

Medium::Transmission& Medium::slot_of(TxHandle h) noexcept {
  assert(h != 0);
  const std::uint32_t slot = slot_index(h);
  assert(slot < slots_.size());
  Transmission& t = slots_[slot];
  assert(t.live && t.generation == static_cast<std::uint32_t>(h) &&
         "stale transmission handle");
  return t;
}

std::uint32_t Medium::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot].live = true;
    return slot;
  }
  slots_.emplace_back();
  slots_.back().live = true;
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Medium::release_ref(TxHandle h) noexcept {
  Transmission& t = slot_of(h);
  assert(t.pending > 0);
  --t.pending;
  if (t.finished && t.pending == 0) maybe_recycle(h);
}

void Medium::maybe_recycle(TxHandle h) noexcept {
  Transmission& t = slot_of(h);
  if (!t.finished || t.pending != 0) return;
  t.frame.reset();       // frame block returns to its pool right away
  t.receptions.clear();  // capacity retained for the next occupant
  t.groups.clear();
  t.tx = nullptr;
  t.aborted = false;
  t.finished = false;
  t.done_event = kInvalidEvent;
  t.live = false;
  ++t.generation;
  free_slots_.push_back(slot_index(h));
}

SimTime Medium::begin_transmission(Radio& tx, FramePtr frame) {
  RMAC_PROF_SCOPE("phy.begin_transmission");
  assert(tx.medium_tx_handle() == 0 && "radio already has a transmission in flight");
  const SimTime airtime = params_.frame_airtime(frame->wire_bytes());
  const SimTime now = scheduler_.now();
  ++tx_started_;

  if (tracer_ != nullptr && tracer_->wants(TraceCategory::kPhy)) {
    TraceRecord r{now, TraceCategory::kPhy, tx.id(), {}};
    r.event = TraceEvent::kTxStart;
    r.frame = frame;
    r.journey = frame->journey;
    tracer_->emit(std::move(r), [&] {
      return cat("tx-start ", to_string(frame->type), " ", frame->wire_bytes(), "B air=",
                 airtime.to_us(), "us");
    });
  }

  const Vec2 origin = tx.position();
  const double ir = params_.effective_interference_range();
  const double r2 = params_.range_m * params_.range_m;
  const double bits = static_cast<double>(frame->wire_bytes()) * 8.0;

  collect_candidates(origin, ir, now, &tx);

  const std::uint32_t slot = acquire_slot();
  Transmission& t = slots_[slot];
  const TxHandle h = encode(slot, t.generation);
  t.frame = std::move(frame);
  t.start = now;
  t.tx = &tx;
  const Frame& f = *t.frame;

  t.receptions.reserve(scratch_.size());
  for (const Candidate& c : scratch_) {
    Radio* rx = c.rx;
    const double dist = std::sqrt(c.dist_sq);
    const SimTime prop = params_.propagation_delay(dist);
    const std::uint64_t sig = next_sig_++;
    // Beyond range_m the signal interferes but can never be decoded.  The
    // staged evaluation mirrors the original short-circuit exactly — the
    // bernoulli draw happens iff the receiver is in decode range — so the
    // RNG stream (and with it the golden digests) is unchanged; the stages
    // exist only to attribute each loss to its cause.
    const bool in_range = c.dist_sq <= r2;
    bool ber_pass = true;
    if (in_range && params_.bit_error_rate > 0.0) {
      ber_pass = rng_.bernoulli(std::pow(1.0 - params_.bit_error_rate, bits));
      if (!ber_pass) ++counters_.ber_losses;
    }
    bool script_pass = true;
    if (in_range && ber_pass && scripted_) {
      script_pass = script_allows_delivery(f, c.id, now);
      if (!script_pass) ++counters_.scripted_losses;
    }
    const bool deliver_ok = in_range && ber_pass && script_pass;
    t.receptions.push_back(Reception{rx, sig, dist, prop, c.id, deliver_ok});
  }

  // Group receptions by propagation delay: each distinct arrival tick gets
  // one shared begin event and one shared end event.  The (prop, id) sort
  // keeps equal-prop runs contiguous *and* in ascending NodeId order, which
  // is exactly the firing order the old per-receiver events had (ids were
  // assigned seqs in id order), so the trace is bit-identical.  Leading and
  // trailing edges can never collide on a tick: airtime carries a fixed
  // >= 96 us phy overhead while in-range propagation is ~1 us at most.
  if (grouped_delivery_ && t.receptions.size() > 1) {
    // Permute via 16-byte (prop, index) keys: receptions were pushed in
    // ascending-id order, so index order *is* id order and the key sort
    // reproduces the (prop, id) order exactly; one gather pass then moves
    // each 48-byte record once instead of O(n log n) times.
    order_keys_.clear();
    for (std::uint32_t i = 0; i < t.receptions.size(); ++i) {
      order_keys_.emplace_back(t.receptions[i].prop, i);
    }
    std::sort(order_keys_.begin(), order_keys_.end());
    reception_scratch_.clear();
    reception_scratch_.reserve(t.receptions.size());
    for (const auto& [prop, idx] : order_keys_) {
      reception_scratch_.push_back(t.receptions[idx]);
    }
    t.receptions.swap(reception_scratch_);
  }
  t.groups.clear();
  const std::uint32_t n = static_cast<std::uint32_t>(t.receptions.size());
  for (std::uint32_t first = 0; first < n;) {
    std::uint32_t last = first + 1;
    if (grouped_delivery_) {
      while (last < n && t.receptions[last].prop == t.receptions[first].prop) ++last;
    }
    t.groups.push_back(DeliveryGroup{t.receptions[first].prop, first, last, kInvalidEvent});
    first = last;
  }
  // All begin groups first, then all end groups, then the done bookkeeping
  // event: within a tick the scheduler runs seq order, and this matches the
  // old begin-before-end interleaving for the prop == 0 edge case.  The
  // whole salvo goes through one BulkInsert, so the heap is re-established
  // once instead of sifting per event.
  {
    Scheduler::BulkInsert bulk{scheduler_};
    for (std::uint32_t g = 0; g < t.groups.size(); ++g) {
      bulk.in(t.groups[g].prop, [this, h, g] { on_group_begin(h, g); });
    }
    for (std::uint32_t g = 0; g < t.groups.size(); ++g) {
      t.groups[g].end_event =
          bulk.in(t.groups[g].prop + airtime, [this, h, g] { on_group_end(h, g); });
    }
    t.done_event = bulk.in(airtime, [this, h] { on_tx_done(h); });
    t.pending += 2 * static_cast<std::uint32_t>(t.groups.size()) + 1;
  }
  tx.set_medium_tx_handle(h);
  if (tx_observer_ != nullptr) tx_observer_->on_tx_begin(t.frame, origin, now, h);
  return airtime;
}

bool Medium::handle_live(TxHandle h) const noexcept {
  if (h == 0) return false;
  const std::uint32_t slot = slot_index(h);
  if (slot >= slots_.size()) return false;
  const Transmission& t = slots_[slot];
  return t.live && t.generation == static_cast<std::uint32_t>(h);
}

Medium::TxHandle Medium::begin_remote_transmission(FramePtr frame, Vec2 origin,
                                                   SimTime start) {
  const SimTime airtime = params_.frame_airtime(frame->wire_bytes());
  const SimTime now = scheduler_.now();
  const double ir = params_.effective_interference_range();
  const double r2 = params_.range_m * params_.range_m;
  const double bits = static_cast<double>(frame->wire_bytes()) * 8.0;

  // Candidates are swept at the transmission's true `start`, not now(): the
  // mirror may be up to one lookahead window old and receivers move in the
  // meantime.  Evaluating geometry at emission time makes the remote path
  // agree bit for bit with what the serial engine computed at `start`.
  collect_candidates(origin, ir, start, /*exclude=*/nullptr);
  if (scratch_.empty()) return 0;
  ++remote_mirrored_;

  const std::uint32_t slot = acquire_slot();
  Transmission& t = slots_[slot];
  const TxHandle h = encode(slot, t.generation);
  t.frame = std::move(frame);
  t.start = start;
  t.tx = nullptr;  // transmitter lives in another shard
  const Frame& f = *t.frame;

  t.receptions.reserve(scratch_.size());
  for (const Candidate& c : scratch_) {
    const double dist = std::sqrt(c.dist_sq);
    const SimTime prop = params_.propagation_delay(dist);
    if (start + prop + airtime <= now) continue;  // wholly in the past
    const std::uint64_t sig = next_sig_++;
    const bool in_range = c.dist_sq <= r2;
    // A leading edge already behind now() means the receiver missed part of
    // the signal: it still interferes for the remainder but can't decode.
    const bool clamped = start + prop < now;
    if (clamped) ++remote_clamped_;
    bool ber_pass = true;
    if (in_range && !clamped && params_.bit_error_rate > 0.0) {
      ber_pass = rng_.bernoulli(std::pow(1.0 - params_.bit_error_rate, bits));
      if (!ber_pass) ++counters_.ber_losses;
    }
    bool script_pass = true;
    if (in_range && !clamped && ber_pass && scripted_) {
      script_pass = script_allows_delivery(f, c.id, start);
      if (!script_pass) ++counters_.scripted_losses;
    }
    const bool deliver_ok = in_range && !clamped && ber_pass && script_pass;
    t.receptions.push_back(Reception{c.rx, sig, dist, prop, c.id, deliver_ok});
  }
  if (t.receptions.empty()) {
    t.finished = true;
    maybe_recycle(h);
    return 0;
  }

  if (grouped_delivery_ && t.receptions.size() > 1) {
    order_keys_.clear();
    for (std::uint32_t i = 0; i < t.receptions.size(); ++i) {
      order_keys_.emplace_back(t.receptions[i].prop, i);
    }
    std::sort(order_keys_.begin(), order_keys_.end());
    reception_scratch_.clear();
    reception_scratch_.reserve(t.receptions.size());
    for (const auto& [prop, idx] : order_keys_) {
      reception_scratch_.push_back(t.receptions[idx]);
    }
    t.receptions.swap(reception_scratch_);
  }
  t.groups.clear();
  const std::uint32_t n = static_cast<std::uint32_t>(t.receptions.size());
  for (std::uint32_t first = 0; first < n;) {
    std::uint32_t last = first + 1;
    if (grouped_delivery_) {
      while (last < n && t.receptions[last].prop == t.receptions[first].prop) ++last;
    }
    t.groups.push_back(DeliveryGroup{t.receptions[first].prop, first, last, kInvalidEvent});
    first = last;
  }
  // No done event: the mirror is logically finished at creation and recycles
  // once the last scheduled edge fires.  Begin edges clamp to now(); trailing
  // edges land at the true signal end, which the skip test above guarantees
  // is still in the future.
  {
    Scheduler::BulkInsert bulk{scheduler_};
    for (std::uint32_t g = 0; g < t.groups.size(); ++g) {
      bulk.at(std::max(start + t.groups[g].prop, now),
              [this, h, g] { on_group_begin(h, g); });
    }
    for (std::uint32_t g = 0; g < t.groups.size(); ++g) {
      t.groups[g].end_event = bulk.at(start + t.groups[g].prop + airtime,
                                      [this, h, g] { on_group_end(h, g); });
    }
    t.pending += 2 * static_cast<std::uint32_t>(t.groups.size());
  }
  t.finished = true;
  return h;
}

void Medium::abort_remote_transmission(TxHandle h, SimTime at) {
  if (!handle_live(h)) return;  // all receptions already ended and recycled
  Transmission& t = slot_of(h);
  if (t.aborted) return;
  t.aborted = true;
  const SimTime now = scheduler_.now();
  for (std::uint32_t g = 0; g < t.groups.size(); ++g) {
    DeliveryGroup& grp = t.groups[g];
    if (scheduler_.cancel(grp.end_event)) {
      grp.end_event = scheduler_.schedule_at(std::max(at + grp.prop, now),
                                             [this, h, g] { on_group_end(h, g); });
    }
  }
  maybe_recycle(h);
}

void Medium::on_group_begin(TxHandle h, std::uint32_t group) {
  Transmission& t = slot_of(h);
  const DeliveryGroup g = t.groups[group];
  for (std::uint32_t i = g.first; i < g.last; ++i) {
    const Reception& rc = t.receptions[i];
    if (rc.rx != nullptr) rc.rx->signal_begin(rc.sig, rc.dist);
  }
  release_ref(h);
}

void Medium::on_group_end(TxHandle h, std::uint32_t group) {
  RMAC_PROF_SCOPE("phy.signal_end");
  Transmission& t = slot_of(h);
  const DeliveryGroup g = t.groups[group];
  for (std::uint32_t i = g.first; i < g.last; ++i) {
    const Reception& rc = t.receptions[i];
    if (rc.rx == nullptr) continue;  // receiver detached mid-flight
    // `t.frame` stays alive across the listener callback: this closure's
    // pending ref blocks recycling, and the deque keeps `t` stable even if
    // the listener re-enters begin_transmission.  `t.aborted` is re-read per
    // member, matching the old per-receiver events' fire-time evaluation.
    rc.rx->signal_end(rc.sig, rc.deliver_ok && !t.aborted, t.frame);
  }
  release_ref(h);
}

void Medium::truncate_groups(TxHandle h, Transmission& t) {
  // Truncate the signal at every receiver: the tail that would have arrived
  // after now + prop never airs; the partial frame is corrupt.  The group's
  // trailing-edge ref transfers to the truncation edge (same handler — with
  // t.aborted set it delivers `intact == false` to every member).
  for (std::uint32_t g = 0; g < t.groups.size(); ++g) {
    DeliveryGroup& grp = t.groups[g];
    if (scheduler_.cancel(grp.end_event)) {
      grp.end_event =
          scheduler_.schedule_in(grp.prop, [this, h, g] { on_group_end(h, g); });
    }
  }
}

void Medium::on_tx_done(TxHandle h) {
  Transmission& t = slot_of(h);
  Radio* tx = t.tx;
  tx->set_medium_tx_handle(0);
  if (tracer_ != nullptr && tracer_->wants(TraceCategory::kPhy)) {
    TraceRecord r{scheduler_.now(), TraceCategory::kPhy, tx->id(), {}};
    r.event = TraceEvent::kTxEnd;
    r.frame = t.frame;
    r.journey = t.frame->journey;
    tracer_->emit(std::move(r), [&t] { return cat("tx-end ", to_string(t.frame->type)); });
  }
  t.finished = true;
  tx->transmit_finished(t.frame, /*aborted=*/false);
  release_ref(h);
}

void Medium::abort_transmission(Radio& tx) {
  const TxHandle h = tx.medium_tx_handle();
  assert(h != 0 && "no transmission to abort");
  Transmission& t = slot_of(h);
  t.aborted = true;
  ++counters_.tx_aborted;
  if (scheduler_.cancel(t.done_event)) --t.pending;
  truncate_groups(h, t);
  if (tracer_ != nullptr && tracer_->wants(TraceCategory::kPhy)) {
    TraceRecord r{scheduler_.now(), TraceCategory::kPhy, tx.id(), {}};
    r.event = TraceEvent::kTxEnd;
    r.frame = t.frame;
    r.journey = t.frame->journey;
    r.flag = true;  // aborted
    tracer_->emit(std::move(r), [&t] { return cat("tx-abort ", to_string(t.frame->type)); });
  }
  t.finished = true;
  tx.set_medium_tx_handle(0);
  if (tx_observer_ != nullptr) tx_observer_->on_tx_abort(h, scheduler_.now());
  tx.transmit_finished(t.frame, /*aborted=*/true);
  maybe_recycle(h);
}

}  // namespace rmacsim
