#include "phy/medium.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include "sim/strfmt.hpp"

namespace rmacsim {

Medium::Medium(Scheduler& scheduler, PhyParams params, Rng rng, Tracer* tracer)
    : params_{params},
      scheduler_{scheduler},
      rng_{rng},
      tracer_{tracer},
      index_{params_.effective_interference_range()} {}

void Medium::attach(Radio& radio) {
  radios_by_id_[radio.id()] = &radio;
  index_.insert(radio.id(), radio.mobility(), &radio);
}

void Medium::detach(Radio& radio) noexcept {
  radios_by_id_.erase(radio.id());
  index_.remove(radio.id());
  active_.erase(&radio);
}

std::vector<NodeId> Medium::neighbours_of(NodeId of) const {
  std::vector<NodeId> out;
  const auto it = radios_by_id_.find(of);
  if (it == radios_by_id_.end()) return out;
  Radio* self = it->second;
  out.reserve(16);
  index_.for_each_in_range(self->position(), params_.range_m, scheduler_.now(),
                           [&](NodeId id, void* payload, Vec2, double) {
                             if (static_cast<Radio*>(payload) != self) out.push_back(id);
                           });
  std::sort(out.begin(), out.end());
  return out;
}

SimTime Medium::begin_transmission(Radio& tx, FramePtr frame) {
  assert(!active_.contains(&tx) && "radio already has a transmission in flight");
  const SimTime airtime = params_.frame_airtime(frame->wire_bytes());
  auto t = std::make_shared<Transmission>();
  t->frame = frame;
  t->start = scheduler_.now();
  ++tx_started_;

  if (tracer_ != nullptr && tracer_->enabled()) {
    TraceRecord r{scheduler_.now(), TraceCategory::kPhy, tx.id(),
                  cat("tx-start ", to_string(frame->type), " ", frame->wire_bytes(), "B air=",
                      airtime.to_us(), "us")};
    r.event = TraceEvent::kTxStart;
    r.frame = frame;
    tracer_->emit(std::move(r));
  }

  const Vec2 origin = tx.position();
  const double ir = params_.effective_interference_range();
  const double r2 = params_.range_m * params_.range_m;
  const double bits = static_cast<double>(frame->wire_bytes()) * 8.0;

  // Grid query; sorted by id so signal events, sequence numbers, and BER
  // draws are assigned in a platform-independent order.
  scratch_.clear();
  index_.for_each_in_range(origin, ir, scheduler_.now(),
                           [&](NodeId, void* payload, Vec2, double d2) {
                             Radio* rx = static_cast<Radio*>(payload);
                             if (rx != &tx) scratch_.push_back(Candidate{rx, d2});
                           });
  std::sort(scratch_.begin(), scratch_.end(),
            [](const Candidate& a, const Candidate& b) { return a.rx->id() < b.rx->id(); });

  t->receptions.reserve(scratch_.size());
  for (const Candidate& c : scratch_) {
    Radio* rx = c.rx;
    const double dist = std::sqrt(c.dist_sq);
    const SimTime prop = params_.propagation_delay(dist);
    const std::uint64_t sig = next_sig_++;
    // Beyond range_m the signal interferes but can never be decoded.
    const bool ber_ok = c.dist_sq <= r2 &&
                        (params_.bit_error_rate <= 0.0 ||
                         rng_.bernoulli(std::pow(1.0 - params_.bit_error_rate, bits))) &&
                        script_allows_delivery(*frame, rx->id(), t->start);
    scheduler_.schedule_in(prop,
                           [rx, sig, frame, dist] { rx->signal_begin(sig, frame, dist); });
    const EventId end_ev = scheduler_.schedule_in(
        prop + airtime, [rx, sig, t, ber_ok] { rx->signal_end(sig, !t->aborted && ber_ok); });
    t->receptions.push_back(Reception{rx, sig, end_ev, prop, ber_ok});
  }

  Radio* txp = &tx;
  t->done_event = scheduler_.schedule_in(airtime, [this, txp, frame] {
    active_.erase(txp);
    if (tracer_ != nullptr && tracer_->enabled()) {
      TraceRecord r{scheduler_.now(), TraceCategory::kPhy, txp->id(),
                    cat("tx-end ", to_string(frame->type))};
      r.event = TraceEvent::kTxEnd;
      r.frame = frame;
      tracer_->emit(std::move(r));
    }
    txp->transmit_finished(frame, /*aborted=*/false);
  });
  active_.emplace(&tx, std::move(t));
  return airtime;
}

void Medium::abort_transmission(Radio& tx) {
  auto it = active_.find(&tx);
  assert(it != active_.end() && "no transmission to abort");
  const std::shared_ptr<Transmission> t = it->second;
  t->aborted = true;
  scheduler_.cancel(t->done_event);
  // Truncate the signal at every receiver: the tail that would have arrived
  // after now + prop never airs; the partial frame is corrupt.
  for (const Reception& rc : t->receptions) {
    scheduler_.cancel(rc.end_event);
    Radio* rx = rc.rx;
    const std::uint64_t sig = rc.sig;
    scheduler_.schedule_in(rc.prop, [rx, sig] { rx->signal_end(sig, /*intact=*/false); });
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    TraceRecord r{scheduler_.now(), TraceCategory::kPhy, tx.id(),
                  cat("tx-abort ", to_string(t->frame->type))};
    r.event = TraceEvent::kTxEnd;
    r.frame = t->frame;
    r.flag = true;  // aborted
    tracer_->emit(std::move(r));
  }
  FramePtr frame = t->frame;
  active_.erase(it);
  tx.transmit_finished(frame, /*aborted=*/true);
}

}  // namespace rmacsim
