#include "phy/medium.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include "sim/strfmt.hpp"

namespace rmacsim {

Medium::Medium(Scheduler& scheduler, PhyParams params, Rng rng, Tracer* tracer)
    : params_{params}, scheduler_{scheduler}, rng_{rng}, tracer_{tracer} {}

void Medium::attach(Radio& radio) { radios_.push_back(&radio); }

void Medium::detach(Radio& radio) noexcept {
  std::erase(radios_, &radio);
  active_.erase(&radio);
}

std::vector<NodeId> Medium::neighbours_of(NodeId of) const {
  std::vector<NodeId> out;
  const Radio* self = nullptr;
  for (const Radio* r : radios_) {
    if (r->id() == of) {
      self = r;
      break;
    }
  }
  if (self == nullptr) return out;
  const Vec2 p = self->position();
  const double r2 = params_.range_m * params_.range_m;
  for (const Radio* r : radios_) {
    if (r == self) continue;
    if (distance_sq(p, r->position()) <= r2) out.push_back(r->id());
  }
  return out;
}

SimTime Medium::begin_transmission(Radio& tx, FramePtr frame) {
  assert(!active_.contains(&tx) && "radio already has a transmission in flight");
  const SimTime airtime = params_.frame_airtime(frame->wire_bytes());
  auto t = std::make_shared<Transmission>();
  t->frame = frame;
  t->start = scheduler_.now();
  ++tx_started_;

  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->emit(scheduler_.now(), TraceCategory::kPhy, tx.id(),
                  cat("tx-start ", to_string(frame->type), " ", frame->wire_bytes(), "B air=",
                      airtime.to_us(), "us"));
  }

  const Vec2 origin = tx.position();
  const double ir = params_.effective_interference_range();
  const double ir2 = ir * ir;
  const double r2 = params_.range_m * params_.range_m;
  const double bits = static_cast<double>(frame->wire_bytes()) * 8.0;
  for (Radio* rx : radios_) {
    if (rx == &tx) continue;
    const double d2 = distance_sq(origin, rx->position());
    if (d2 > ir2) continue;
    const double dist = std::sqrt(d2);
    const SimTime prop = params_.propagation_delay(dist);
    const std::uint64_t sig = next_sig_++;
    // Beyond range_m the signal interferes but can never be decoded.
    const bool ber_ok = d2 <= r2 &&
                        (params_.bit_error_rate <= 0.0 ||
                         rng_.bernoulli(std::pow(1.0 - params_.bit_error_rate, bits)));
    scheduler_.schedule_in(prop,
                           [rx, sig, frame, dist] { rx->signal_begin(sig, frame, dist); });
    const EventId end_ev = scheduler_.schedule_in(
        prop + airtime, [rx, sig, t, ber_ok] { rx->signal_end(sig, !t->aborted && ber_ok); });
    t->receptions.push_back(Reception{rx, sig, end_ev, prop, ber_ok});
  }

  Radio* txp = &tx;
  t->done_event = scheduler_.schedule_in(airtime, [this, txp, frame] {
    active_.erase(txp);
    txp->transmit_finished(frame, /*aborted=*/false);
  });
  active_.emplace(&tx, std::move(t));
  return airtime;
}

void Medium::abort_transmission(Radio& tx) {
  auto it = active_.find(&tx);
  assert(it != active_.end() && "no transmission to abort");
  const std::shared_ptr<Transmission> t = it->second;
  t->aborted = true;
  scheduler_.cancel(t->done_event);
  // Truncate the signal at every receiver: the tail that would have arrived
  // after now + prop never airs; the partial frame is corrupt.
  for (const Reception& rc : t->receptions) {
    scheduler_.cancel(rc.end_event);
    Radio* rx = rc.rx;
    const std::uint64_t sig = rc.sig;
    scheduler_.schedule_in(rc.prop, [rx, sig] { rx->signal_end(sig, /*intact=*/false); });
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->emit(scheduler_.now(), TraceCategory::kPhy, tx.id(),
                  cat("tx-abort ", to_string(t->frame->type)));
  }
  FramePtr frame = t->frame;
  active_.erase(it);
  tx.transmit_finished(frame, /*aborted=*/true);
}

}  // namespace rmacsim
