#include "phy/scripted_medium.hpp"

namespace rmacsim {

bool ScriptedMedium::script_allows_delivery(const Frame& frame, NodeId rx, SimTime tx_start) {
  for (LossRule& rule : rules_) {
    if (rule.count == 0) continue;
    if (rule.rx != rx) continue;
    if (rule.type.has_value() && *rule.type != frame.type) continue;
    if (rule.tx != kInvalidNode && rule.tx != frame.transmitter) continue;
    if (tx_start < rule.from || tx_start > rule.to) continue;
    --rule.count;
    ++losses_;
    return false;
  }
  return true;
}

void ScriptedMedium::truncate_at(NodeId tx, SimTime at) {
  scheduler().schedule_at(at, [this, tx] {
    Radio* r = radio_for(tx);
    if (r != nullptr && r->transmitting()) abort_transmission(*r);
  });
}

}  // namespace rmacsim
