// Structure-of-arrays mirror of a SpatialIndex's packed node state.
//
// The fanout inner loops (Medium::begin_transmission, ToneChannel queries)
// spend their time answering "is lane k within radius r of this point?".
// Walking the index's Entry structs costs a 56-byte strided load plus a
// branchy mobility check per node; mirroring the positions into packed
// parallel arrays (x[], y[], flags[]) turns the common all-stationary case
// into a contiguous squared-distance sweep the compiler auto-vectorizes.
//
// Layout contract: lane k corresponds to the index's packed CSR slot k (see
// SpatialIndex::for_each_packed), so the index's cell_range() spans are
// directly usable as lane ranges.  The mirror resyncs lazily: sync() is a
// no-op while the index epoch is unchanged (stationary scenarios pay one
// rebuild total), and a rebuild resets all owner-defined flag bits, which
// the owner must then re-seed (ToneChannel does; the Medium uses none).
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "geom/vec2.hpp"
#include "mobility/mobility.hpp"
#include "mobility/spatial_index.hpp"
#include "sim/ids.hpp"

namespace rmacsim {

class NodeSoa {
public:
  // flags() bit assignments.  kFlagMoving is maintained by sync(); the rest
  // belong to the owner and survive until the next rebuild.
  static constexpr std::uint8_t kFlagMoving = 1u << 0;
  static constexpr std::uint8_t kFlagActive = 1u << 1;      // ToneChannel: tone audible
  static constexpr std::uint8_t kFlagSuppressed = 1u << 2;  // ToneChannel: scripted corruption

  static constexpr std::uint32_t kNoLane = 0xffffffffu;

  // Mirror the index's packed layout.  Returns true when the lanes were
  // rebuilt (index epoch advanced) — owner-defined flags are zeroed then.
  bool sync(const SpatialIndex& index);

  [[nodiscard]] std::size_t size() const noexcept { return xs_.size(); }
  [[nodiscard]] const double* xs() const noexcept { return xs_.data(); }
  [[nodiscard]] const double* ys() const noexcept { return ys_.data(); }
  [[nodiscard]] const NodeId* ids() const noexcept { return ids_.data(); }
  [[nodiscard]] void* const* payloads() const noexcept { return payloads_.data(); }
  [[nodiscard]] MobilityModel* const* mobilities() const noexcept { return mobs_.data(); }
  [[nodiscard]] const std::uint8_t* flags() const noexcept { return flags_.data(); }
  [[nodiscard]] std::uint8_t* flags() noexcept { return flags_.data(); }

  // Packed lane of a node, or kNoLane if absent from the last sync.
  [[nodiscard]] std::uint32_t lane_of(NodeId id) const noexcept {
    return id < lane_of_.size() ? lane_of_[id] : kNoLane;
  }
  void set_flag(NodeId id, std::uint8_t mask, bool on) noexcept {
    const std::uint32_t k = lane_of(id);
    if (k == kNoLane) return;
    if (on) {
      flags_[k] |= mask;
    } else {
      flags_[k] &= static_cast<std::uint8_t>(~mask);
    }
  }

  // Visit every lane whose *exact* position at `t` lies within `radius` of
  // `center`: f(lane, d2) with d2 <= radius^2, or f(lane, d2) -> bool to
  // stop the walk on false.  Lanes missing any bit of RequireMask are
  // prefiltered before the exact check.  The cached-position sweep is the
  // vectorizable part; lanes inside the slack-expanded disk recompute the
  // exact position only when kFlagMoving is set, so the distance expression
  // matches SpatialIndex::for_each_in_range bit for bit.
  // Pre: index.prepare(t) and sync(index) already called.
  template <std::uint8_t RequireMask = 0, typename F>
  void for_each_in_disk(const SpatialIndex& index, Vec2 center, double radius, SimTime t,
                        F&& f) const {
    const double slack = index.query_slack(t);
    const double reach = radius + slack;
    const double reach2 = reach * reach;
    const double r2 = radius * radius;
    const auto box = index.cell_box(center, reach);
    const double* xs = xs_.data();
    const double* ys = ys_.data();
    const std::uint8_t* fl = flags_.data();
    for (int cy = box.cy0; cy <= box.cy1; ++cy) {
      for (int cx = box.cx0; cx <= box.cx1; ++cx) {
        const auto [first, last] = index.cell_range(cx, cy);
        d2_scratch_.resize(last - first);
        double* d2s = d2_scratch_.data();
        // Branch-free candidate distances over the packed lanes — this loop
        // is the one the compiler vectorizes.
        for (std::uint32_t k = first; k < last; ++k) {
          d2s[k - first] = distance_sq(center, Vec2{xs[k], ys[k]});
        }
        for (std::uint32_t k = first; k < last; ++k) {
          double d2 = d2s[k - first];
          if (d2 > reach2) continue;
          if constexpr (RequireMask != 0) {
            if ((fl[k] & RequireMask) != RequireMask) continue;
          }
          if ((fl[k] & kFlagMoving) != 0) {
            d2 = distance_sq(center, mobs_[k]->position(t));
          }
          if (d2 > r2) continue;
          if constexpr (std::is_same_v<std::invoke_result_t<F&, std::uint32_t, double>, bool>) {
            if (!f(k, d2)) return;
          } else {
            f(k, d2);
          }
        }
      }
    }
  }

private:
  std::uint64_t synced_epoch_{0};
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<NodeId> ids_;
  std::vector<void*> payloads_;
  std::vector<MobilityModel*> mobs_;
  std::vector<std::uint8_t> flags_;
  std::vector<std::uint32_t> lane_of_;  // dense NodeId -> lane
  mutable std::vector<double> d2_scratch_;
};

}  // namespace rmacsim
