// Pooled construction for Frame objects.
//
// Every frame on the air is built once (a MAC composes it) and then shared
// read-only by the medium's transmission record, trace records, and the
// delivery callbacks.  The sharing semantics stay std::shared_ptr<const
// Frame> — nothing downstream changes — but make_frame() places the control
// block and the Frame together in one block drawn from a thread-local
// freelist, so steady-state frame construction and destruction perform no
// heap allocation: a frame's block returns to the pool when its last
// reference drops and is reused by the next frame of the same size.
//
// The freelist is thread-local because an experiment runs wholly on one
// thread (the parallel sweep runner gives each worker its own experiments),
// which makes recycling lock-free.  A block freed on a different thread from
// the one that allocated it simply goes back to that thread's heap — correct,
// just not pooled.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "phy/frame.hpp"

namespace rmacsim {

namespace frame_pool {

// Raw size-bucketed block interface; make_frame() is the intended consumer,
// these are exposed for tests and diagnostics.
[[nodiscard]] void* allocate(std::size_t bytes);
void deallocate(void* p, std::size_t bytes) noexcept;

// Blocks sitting in this thread's freelist / handed out and not yet returned.
[[nodiscard]] std::size_t free_blocks() noexcept;
[[nodiscard]] std::size_t outstanding_blocks() noexcept;

// Release this thread's freelist and zero its counters.  Campaign workers
// call this per cell so pool gauges in the metrics snapshot reflect only the
// cell's own run — otherwise an in-process serial campaign (workers=0) would
// snapshot pool state inherited from earlier cells and break byte-identity
// with the one-process-per-cell path.
void reset() noexcept;

// Minimal allocator over the freelist for std::allocate_shared.
template <typename T>
struct Allocator {
  using value_type = T;

  Allocator() noexcept = default;
  template <typename U>
  Allocator(const Allocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] T* allocate(std::size_t n) {
    static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                  "frame pool blocks use default operator-new alignment");
    return static_cast<T*>(frame_pool::allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept { frame_pool::deallocate(p, n * sizeof(T)); }

  template <typename U>
  bool operator==(const Allocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace frame_pool

// Pool-backed replacement for std::make_shared<const Frame>(std::move(f)).
[[nodiscard]] inline FramePtr make_frame(Frame&& f) {
  return std::allocate_shared<const Frame>(frame_pool::Allocator<Frame>{}, std::move(f));
}

}  // namespace rmacsim
