// Scripted-PHY test double: a drop-in Medium that lets conformance tests
// inject exact fault timelines — per-receiver frame loss, transmission
// truncation at a chosen microsecond, and (together with
// ToneChannel::set_suppressed) tone corruption.
//
// The double changes *which* copies decode, never the signal geometry:
// corrupted copies still occupy the air, raise carrier sense, and collide,
// exactly like a real reception that failed its checksum.  That keeps every
// protocol timer honest while a test forces one specific loss.
#pragma once

#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "phy/medium.hpp"

namespace rmacsim {

class ScriptedMedium final : public Medium {
public:
  template <typename... Args>
  explicit ScriptedMedium(Args&&... args) : Medium(std::forward<Args>(args)...) {
    scripted_ = true;  // opt in to the per-receiver script_allows_delivery hook
  }

  // Corrupt matching frames at receiver `rx`.  A rule matches a transmission
  // whose first bit airs inside [from, to] (defaults: all of time), whose
  // type equals `type` (nullopt: any type), and whose transmitter is `tx`
  // (kInvalidNode: any transmitter).  Each rule fires at most `count` times.
  struct LossRule {
    NodeId rx{kInvalidNode};               // receiver whose copy is corrupted
    std::optional<FrameType> type{};       // frame-type filter
    NodeId tx{kInvalidNode};               // transmitter filter (kInvalidNode: any)
    SimTime from{SimTime::zero()};
    SimTime to{SimTime::max()};
    unsigned count{std::numeric_limits<unsigned>::max()};
  };

  void add_loss(LossRule rule) { rules_.push_back(rule); }

  // Convenience: corrupt the next `count` frames of `type` at `rx`.
  void drop_next(NodeId rx, FrameType type, unsigned count = 1) {
    add_loss(LossRule{rx, type, kInvalidNode, SimTime::zero(), SimTime::max(), count});
  }

  // Truncate whatever `tx` has on the air at absolute time `at` (no-op if
  // the radio is not transmitting then) — scripted mid-frame cut, as if the
  // transmitter lost power at that exact microsecond.
  void truncate_at(NodeId tx, SimTime at);

  [[nodiscard]] std::uint64_t scripted_losses() const noexcept { return losses_; }

protected:
  [[nodiscard]] bool script_allows_delivery(const Frame& frame, NodeId rx,
                                            SimTime tx_start) override;

private:
  std::vector<LossRule> rules_;
  std::uint64_t losses_{0};
};

}  // namespace rmacsim
