// The shared wireless data channel.
//
// Disk propagation: a transmission reaches exactly the radios within
// `range_m` of the transmitter at transmission start, each after its own
// propagation delay (distance / c).  Signals from concurrent transmissions
// overlap at receivers and corrupt each other (no capture), matching the
// paper's GloMoSim configuration at equal transmit power.
//
// Receiver lookup goes through a uniform-grid SpatialIndex whose packed CSR
// buckets feed a structure-of-arrays mirror (phy/node_soa.hpp): the
// candidate disk check is a contiguous squared-distance sweep over packed
// x/y lanes (auto-vectorized) instead of a strided walk over Entry structs.
// Candidates are visited in ascending NodeId order to keep event ordering
// platform-independent.
//
// Deliveries are scheduled as *groups*: receptions whose leading edges land
// on the same tick (equal propagation delay — ubiquitous on lattice and
// quantized topologies) share one scheduled begin event and one end event
// instead of N heap pushes each.  Within a group receivers fire in
// ascending NodeId order, which is exactly the seq order the per-receiver
// events had, so grouping is invisible to the golden trace digests;
// set_grouped_delivery(false) forces singleton groups for the equivalence
// tests.
//
// Transmission/reception records live in a slab pool (generation-checked
// handles, mirroring the scheduler's event slab): begin/abort_transmission
// perform zero heap allocation in steady state, and the per-receiver
// closures capture a 16-byte {medium, handle} pair instead of two
// shared_ptrs.  A slot is recycled once the transmission logically ended
// (done/abort/detach) and every scheduled closure that reads it has fired
// or been cancelled (`pending` refcount).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <utility>
#include <unordered_map>
#include <vector>

#include "mobility/spatial_index.hpp"
#include "phy/frame.hpp"
#include "phy/node_soa.hpp"
#include "phy/params.hpp"
#include "phy/radio.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"

namespace rmacsim {

class Medium {
public:
  // {slot+1, generation} packed like the scheduler's EventId; 0 is invalid.
  using TxHandle = std::uint64_t;

  // Cross-shard seam (scenario/sharded_network.*): every locally originated
  // transmission begin/abort is reported so mirrors can be scheduled in
  // neighbouring shards.  The key is the transmission's handle — unique for
  // the lifetime of the mirror thanks to the slot generation counter.
  class TxObserver {
  public:
    virtual ~TxObserver() = default;
    virtual void on_tx_begin(const FramePtr& frame, Vec2 origin, SimTime start,
                             TxHandle key) = 0;
    virtual void on_tx_abort(TxHandle key, SimTime at) = 0;
  };

  Medium(Scheduler& scheduler, PhyParams params, Rng rng, Tracer* tracer = nullptr);
  virtual ~Medium() = default;
  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  void attach(Radio& radio);
  void detach(Radio& radio) noexcept;

  [[nodiscard]] const PhyParams& params() const noexcept { return params_; }
  [[nodiscard]] Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] Tracer* tracer() const noexcept { return tracer_; }

  // Radios within range of `of` right now, in ascending id order
  // (neighbourhood snapshot; used by upper layers that need the ground-truth
  // topology, e.g. tests/benches).  The returned span views a member scratch
  // buffer: valid until the next neighbours_of call, no allocation per query.
  [[nodiscard]] std::span<const NodeId> neighbours_of(NodeId of) const;

  // --- Radio-facing interface ---------------------------------------------
  // Virtual so a test double (ScriptedMedium) can layer scripted faults on
  // top; dispatch cost is per transmission, not per event.
  virtual SimTime begin_transmission(Radio& tx, FramePtr frame);
  virtual void abort_transmission(Radio& tx);

  void set_tx_observer(TxObserver* obs) noexcept { tx_observer_ = obs; }

  // --- Cross-shard mirror interface ---------------------------------------
  // Schedule the local receptions of a transmission that originated in
  // another shard: leading/trailing edges and decode verdicts exactly as if
  // a local radio at `origin` had transmitted at `start`, but with no
  // transmitter-side callbacks (no done event, no tx-start/tx-end trace).
  // `start` may lie in the past (conservative-window clamping): a reception
  // whose leading edge would land before now() begins late and is marked
  // corrupt (partial signal), counted in remote_clamped(); a reception
  // wholly in the past is skipped.  Candidate positions are evaluated at
  // `start` — the emission instant — so mobile receivers see exactly the
  // geometry the serial engine would have computed.  Returns 0 when no local
  // radio is in interference range.
  TxHandle begin_remote_transmission(FramePtr frame, Vec2 origin, SimTime start);
  // Truncate a remote mirror's receptions at `at` (+prop per group), like a
  // local abort.  Tolerates stale handles: a mirror whose receptions all
  // ended before the abort message crossed the shard boundary has already
  // been recycled, and truncating it is a no-op.
  void abort_remote_transmission(TxHandle h, SimTime at);
  [[nodiscard]] std::uint64_t remote_mirrored() const noexcept { return remote_mirrored_; }
  [[nodiscard]] std::uint64_t remote_clamped() const noexcept { return remote_clamped_; }

  // Equal-propagation receptions share one begin/end event pair (default).
  // Off = one group per reception; the equivalence tests prove both modes
  // produce bit-identical traces.
  void set_grouped_delivery(bool on) noexcept { grouped_delivery_ = on; }
  [[nodiscard]] bool grouped_delivery() const noexcept { return grouped_delivery_; }

  // Counters for diagnostics.
  [[nodiscard]] std::uint64_t transmissions_started() const noexcept { return tx_started_; }
  // Slab-pool introspection (tests/benches assert steady-state reuse).
  [[nodiscard]] std::size_t pool_slots() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t pool_free_slots() const noexcept { return free_slots_.size(); }

  // Reception-outcome tally for the metrics registry.  Plain unconditional
  // increments on the hot path; published to labeled series at end of run.
  struct Counters {
    std::uint64_t tx_aborted{0};
    std::uint64_t ber_losses{0};       // decode-range copies killed by the BER draw
    std::uint64_t scripted_losses{0};  // copies killed by the test script seam
    std::uint64_t rx_delivered{0};     // trailing edges handed to a listener
    std::uint64_t rx_collision{0};     // overlap corrupted the copy (incl. capture loss)
    std::uint64_t rx_corrupt{0};       // clean on air but BER/script/abort-truncated
    std::uint64_t rx_half_duplex{0};  // arrived intact while the receiver transmitted
  };
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
  // Called by Radio::signal_end with the decode verdict for one trailing edge.
  void note_reception(bool delivered, bool clean, bool intact, bool transmitting) noexcept {
    if (delivered) {
      ++counters_.rx_delivered;
    } else if (!clean) {
      ++counters_.rx_collision;
    } else if (!intact) {
      ++counters_.rx_corrupt;
    } else if (transmitting) {
      ++counters_.rx_half_duplex;
    }
  }

protected:
  // Test seam: consulted once per (transmission, in-decode-range receiver)
  // pair; returning false corrupts the copy at that receiver (scripted
  // loss).  The default medium never drops a deliverable frame here — and
  // never pays the virtual call either: the staging loop only dispatches
  // when a subclass has flipped scripted_ on.
  [[nodiscard]] virtual bool script_allows_delivery(const Frame& /*frame*/, NodeId /*rx*/,
                                                    SimTime /*tx_start*/) {
    return true;
  }
  // Set by subclasses that implement script_allows_delivery.
  bool scripted_{false};

  [[nodiscard]] Radio* radio_for(NodeId id) const noexcept {
    const auto it = radios_by_id_.find(id);
    return it == radios_by_id_.end() ? nullptr : it->second;
  }

private:
  struct Reception {
    Radio* rx;           // nulled if the receiver detaches mid-flight
    std::uint64_t sig;
    double dist;         // exact distance at transmission start
    SimTime prop;
    NodeId id;           // receiver id, kept flat for the (prop, id) sort
    bool deliver_ok;     // in decode range, BER draw passed, script allowed
  };
  // One scheduled begin/end event pair covering the contiguous reception
  // range [first, last) — all with propagation delay `prop`, kept in
  // ascending NodeId order so the shared events replay the exact per-
  // receiver firing order.
  struct DeliveryGroup {
    SimTime prop;
    std::uint32_t first;
    std::uint32_t last;
    EventId end_event;   // trailing edges, or the truncation edge after abort
  };
  struct Transmission {
    FramePtr frame;
    SimTime start;
    Radio* tx{nullptr};
    bool aborted{false};
    bool finished{false};     // logical end reached (done / abort / detach)
    bool live{false};         // slot currently in use
    EventId done_event{kInvalidEvent};
    std::uint32_t generation{0};
    // Outstanding scheduled closures that read this slot (begin/end groups +
    // done).  The slot recycles only when finished && pending == 0, so a
    // closure can always dereference its handle.
    std::uint32_t pending{0};
    std::vector<Reception> receptions;     // capacity survives recycling
    std::vector<DeliveryGroup> groups;     // capacity survives recycling
  };
  struct Candidate {
    Radio* rx;
    NodeId id;
    double dist_sq;
  };

  [[nodiscard]] static constexpr TxHandle encode(std::uint32_t slot,
                                                 std::uint32_t generation) noexcept {
    return (static_cast<TxHandle>(slot + 1) << 32) | generation;
  }
  [[nodiscard]] static constexpr std::uint32_t slot_index(TxHandle h) noexcept {
    return static_cast<std::uint32_t>(h >> 32) - 1;
  }

  [[nodiscard]] Transmission& slot_of(TxHandle h) noexcept;
  [[nodiscard]] bool handle_live(TxHandle h) const noexcept;
  [[nodiscard]] std::uint32_t acquire_slot();
  void release_ref(TxHandle h) noexcept;
  void maybe_recycle(TxHandle h) noexcept;

  // Scheduled-closure entry points.
  void on_group_begin(TxHandle h, std::uint32_t group);
  void on_group_end(TxHandle h, std::uint32_t group);
  void on_tx_done(TxHandle h);
  // Cancel a group's pending trailing edge and replace it with a truncation
  // edge at the leading-edge time (abort / transmitter detach).
  void truncate_groups(TxHandle h, Transmission& t);
  // Fill scratch_ with the radios within `radius` of `origin` (ascending
  // NodeId, exact positions at `now`, excluding `exclude`).
  void collect_candidates(Vec2 origin, double radius, SimTime now, const Radio* exclude) const;

  PhyParams params_;
  Scheduler& scheduler_;
  Rng rng_;
  Tracer* tracer_;
  std::unordered_map<NodeId, Radio*> radios_by_id_;
  mutable SpatialIndex index_;
  mutable NodeSoa soa_;                           // packed mirror of index_
  mutable std::vector<Candidate> scratch_;        // reused per transmission
  mutable std::vector<NodeId> neighbour_scratch_; // backs neighbours_of()
  // Delivery-order staging: receptions are built in NodeId order (the RNG
  // contract), then permuted into (prop, id) order through these reused
  // buffers — sorting 16-byte keys and gathering once is cheaper than
  // sorting the 48-byte Reception records in place.
  std::vector<std::pair<SimTime, std::uint32_t>> order_keys_;
  std::vector<Reception> reception_scratch_;
  bool grouped_delivery_{true};
  // deque: slot references stay valid while a MAC callback re-enters
  // begin_transmission and grows the pool.
  std::deque<Transmission> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_sig_{1};
  std::uint64_t tx_started_{0};
  Counters counters_{};
  TxObserver* tx_observer_{nullptr};
  std::uint64_t remote_mirrored_{0};
  std::uint64_t remote_clamped_{0};
};

}  // namespace rmacsim
