// The shared wireless data channel.
//
// Disk propagation: a transmission reaches exactly the radios within
// `range_m` of the transmitter at transmission start, each after its own
// propagation delay (distance / c).  Signals from concurrent transmissions
// overlap at receivers and corrupt each other (no capture), matching the
// paper's GloMoSim configuration at equal transmit power.
//
// Receiver lookup goes through a uniform-grid SpatialIndex: a transmission
// only examines the cells within interference range instead of every
// attached radio, so fan-out cost scales with neighbourhood size, not
// network size.  Candidates are visited in ascending NodeId order to keep
// event ordering platform-independent.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mobility/spatial_index.hpp"
#include "phy/frame.hpp"
#include "phy/params.hpp"
#include "phy/radio.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"

namespace rmacsim {

class Medium {
public:
  Medium(Scheduler& scheduler, PhyParams params, Rng rng, Tracer* tracer = nullptr);
  virtual ~Medium() = default;
  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  void attach(Radio& radio);
  void detach(Radio& radio) noexcept;

  [[nodiscard]] const PhyParams& params() const noexcept { return params_; }
  [[nodiscard]] Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] Tracer* tracer() const noexcept { return tracer_; }

  // Radios within range of `of` right now, in ascending id order
  // (neighbourhood snapshot; used by upper layers that need the ground-truth
  // topology, e.g. tests/benches).
  [[nodiscard]] std::vector<NodeId> neighbours_of(NodeId of) const;

  // --- Radio-facing interface ---------------------------------------------
  // Virtual so a test double (ScriptedMedium) can layer scripted faults on
  // top; dispatch cost is per transmission, not per event.
  virtual SimTime begin_transmission(Radio& tx, FramePtr frame);
  virtual void abort_transmission(Radio& tx);

  // Counters for diagnostics.
  [[nodiscard]] std::uint64_t transmissions_started() const noexcept { return tx_started_; }

protected:
  // Test seam: consulted once per (transmission, in-decode-range receiver)
  // pair; returning false corrupts the copy at that receiver (scripted
  // loss).  The default medium never drops a deliverable frame here.
  [[nodiscard]] virtual bool script_allows_delivery(const Frame& /*frame*/, NodeId /*rx*/,
                                                    SimTime /*tx_start*/) {
    return true;
  }

  [[nodiscard]] Radio* radio_for(NodeId id) const noexcept {
    const auto it = radios_by_id_.find(id);
    return it == radios_by_id_.end() ? nullptr : it->second;
  }

private:
  struct Reception {
    Radio* rx;
    std::uint64_t sig;
    EventId end_event;
    SimTime prop;
    bool ber_ok;
  };
  struct Transmission {
    FramePtr frame;
    SimTime start;
    bool aborted{false};
    EventId done_event{kInvalidEvent};
    std::vector<Reception> receptions;
  };
  struct Candidate {
    Radio* rx;
    double dist_sq;
  };

  PhyParams params_;
  Scheduler& scheduler_;
  Rng rng_;
  Tracer* tracer_;
  std::unordered_map<NodeId, Radio*> radios_by_id_;
  mutable SpatialIndex index_;
  mutable std::vector<Candidate> scratch_;  // reused per transmission / query
  std::unordered_map<Radio*, std::shared_ptr<Transmission>> active_;
  std::uint64_t next_sig_{1};
  std::uint64_t tx_started_{0};
};

}  // namespace rmacsim
