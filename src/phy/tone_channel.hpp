// Narrow-bandwidth busy-tone channel (one instance per tone: RBT, ABT).
//
// A tone is a sine on its own out-of-band channel: it carries no bits, never
// collides, and can only be sensed present / not present (paper §3.1).  The
// channel keeps a short on/off interval history per source so protocol
// timers can ask, after the fact, "was a foreign tone present at me for at
// least lambda within this window?" — exactly the semantics of the paper's
// T_wf_rbt and T_wf_abt checks.
//
// Source lookup goes through a uniform-grid SpatialIndex: presence and
// window queries iterate only the sources within range of the listener
// instead of every attached node.  Edge-subscriber notifications are
// scheduled in ascending NodeId order so equal-latency callbacks fire in a
// platform-independent order.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "mobility/mobility.hpp"
#include "mobility/spatial_index.hpp"
#include "phy/node_soa.hpp"
#include "phy/params.hpp"
#include "sim/ids.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"

namespace rmacsim {

class ToneChannel {
public:
  ToneChannel(Scheduler& scheduler, const PhyParams& params, std::string name,
              Tracer* tracer = nullptr);
  ToneChannel(const ToneChannel&) = delete;
  ToneChannel& operator=(const ToneChannel&) = delete;

  void attach(NodeId id, MobilityModel& mobility);
  void detach(NodeId id) noexcept;

  // Turn this node's tone on/off.  Idempotent.
  void set_tone(NodeId id, bool on);
  [[nodiscard]] bool my_tone_on(NodeId id) const noexcept;

  // Cross-shard seam (scenario/sharded_network.*): invoked on every local
  // tone transition (never on set_remote_tone), so the engine can forward
  // the edge to neighbouring shards as a typed message.
  using EdgeHook = std::function<void(NodeId source, bool on)>;
  void set_edge_hook(EdgeHook hook) { edge_hook_ = std::move(hook); }

  // Record a tone edge of a source that lives in another shard (attached
  // here as a pinned phantom).  `when` is the source shard's emission time
  // and may precede now() by up to one lookahead window: the history
  // interval is backdated so sensed_at / detected_in_window keep exact
  // semantics, while the edge-subscriber fan-out clamps to the future.
  // Raise/on-time metrics and trace records stay with the source shard.
  void set_remote_tone(NodeId id, bool on, SimTime when);

  // Scripted-PHY fault hook (tests): while suppressed, a source's tone is
  // corrupted on the air — invisible to sensing, window detection, and edge
  // subscribers — although the source itself still believes it is on.
  // Evaluated at query/emission time, so toggling it at a chosen instant
  // corrupts exactly the remainder of the tone.
  void set_suppressed(NodeId id, bool suppressed);
  [[nodiscard]] bool suppressed(NodeId id) const noexcept;

  // Instantaneous presence: is a foreign tone's signal on the air at
  // `listener` right now (leading edge arrived, trailing edge not yet)?
  [[nodiscard]] bool sensed_at(NodeId listener) const;

  // Detection semantics: was a foreign tone present at `listener` for at
  // least the CCA time (lambda) within [from, to]?
  [[nodiscard]] bool detected_in_window(NodeId listener, SimTime from, SimTime to) const;

  // Leading-edge subscription: `cb(source)` fires lambda after a foreign
  // tone's leading edge reaches the subscribed listener (detection latency —
  // this is what makes MRTS abortion rare, §3.3.2 note 3).
  using EdgeCallback = std::function<void(NodeId source)>;
  void subscribe_edges(NodeId listener, EdgeCallback cb);
  void unsubscribe_edges(NodeId listener) noexcept;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const PhyParams& params() const noexcept { return params_; }

  // Metrics: lifetime raise count and summed tone on-time (across all
  // sources; still-on tones contribute when they drop).  Divide on-time by
  // (sim duration × node count) for the duty cycle.
  [[nodiscard]] std::uint64_t raises() const noexcept { return raises_; }
  [[nodiscard]] std::uint64_t suppressed_raises() const noexcept { return suppressed_raises_; }
  [[nodiscard]] SimTime on_time_total() const noexcept { return on_time_total_; }

  // Retained history intervals for a source (diagnostics/tests: stale
  // history is pruned on queries as well as on tone transitions).
  [[nodiscard]] std::size_t history_size(NodeId id) const noexcept;

private:
  struct Interval {
    SimTime on;
    SimTime off;  // SimTime::max() while still on
  };
  struct Source {
    MobilityModel* mobility;
    bool on{false};
    bool suppressed{false};  // scripted corruption: tone inaudible while set
    // mutable: const queries prune expired intervals as they walk sources,
    // so an idle source's history cannot linger past kHistoryKeep.
    mutable std::deque<Interval> history;
  };

  void prune(const Source& s) const;
  // Bring the SoA mirror up to date with the index and re-seed the per-lane
  // tone flags after a rebuild.  kFlagActive means "this source could be
  // audible": tone on now, or history not yet pruned empty.  The bit decays
  // lazily — queries clear it when they find a pruned-empty history — so the
  // sensing sweeps prefilter silent sources without walking their deques.
  void sync_soa(SimTime t) const;
  [[nodiscard]] static std::uint8_t source_flags(const Source& s) noexcept {
    std::uint8_t f = 0;
    if (s.on || !s.history.empty()) f |= NodeSoa::kFlagActive;
    if (s.suppressed) f |= NodeSoa::kFlagSuppressed;
    return f;
  }

  Scheduler& scheduler_;
  const PhyParams& params_;
  std::string name_;
  std::uint32_t tone_kind_;  // kToneKind* derived from name, for trace records
  Tracer* tracer_;
  // Shared tail of set_tone / set_remote_tone: notify in-range edge
  // subscribers of `id`'s leading edge emitted at `when` (never earlier
  // than now for the scheduler).
  void fan_out_edge(NodeId id, const Source& s, SimTime when);

  std::unordered_map<NodeId, Source> sources_;
  std::unordered_map<NodeId, EdgeCallback> edge_subs_;
  EdgeHook edge_hook_;
  mutable SpatialIndex index_;
  mutable NodeSoa soa_;                             // packed mirror of index_
  std::vector<std::pair<NodeId, double>> scratch_;  // set_tone edge fan-out
  std::uint64_t raises_{0};
  std::uint64_t suppressed_raises_{0};
  SimTime on_time_total_{SimTime::zero()};
};

}  // namespace rmacsim
