#include "mac/mx/mx_protocol.hpp"

#include "phy/frame_pool.hpp"

#include <cassert>
#include <utility>

namespace rmacsim {

MxProtocol::MxProtocol(Scheduler& scheduler, Radio& radio, ToneChannel& cts_tone,
                       ToneChannel& nak_tone, Rng rng, MacParams params, Tracer* tracer)
    : Dot11Base{scheduler, radio, rng, params, tracer},
      cts_tone_{cts_tone},
      nak_tone_{nak_tone} {}

MxProtocol::~MxProtocol() = default;

void MxProtocol::reliable_send(AppPacketPtr packet, std::vector<NodeId> receivers) {
  assert(packet != nullptr);
  if (receivers.empty()) {
    ReliableSendResult ok;
    ok.packet = std::move(packet);
    ok.success = true;
    report_done(std::move(ok));
    return;
  }
  if (!queue_admit(params_)) {
    ReliableSendResult r;
    r.packet = std::move(packet);
    r.failed_receivers = std::move(receivers);
    r.receivers = r.failed_receivers;
    r.drop_reason = DropReason::kQueueOverflow;
    report_done(r);
    return;
  }
  TxRequest req;
  req.reliable = true;
  req.packet = std::move(packet);
  req.receivers = std::move(receivers);
  ++stats_.reliable_requests;
  push_request(std::move(req));
  maybe_start();
}

void MxProtocol::unreliable_send(AppPacketPtr packet, NodeId dest) {
  assert(packet != nullptr);
  if (!queue_admit(params_)) return;
  TxRequest req;
  req.reliable = false;
  req.packet = std::move(packet);
  req.dest = dest;
  ++stats_.unreliable_requests;
  push_request(std::move(req));
  maybe_start();
}

void MxProtocol::maybe_start() {
  if (state_ != State::kIdle && state_ != State::kContend) return;
  if (rx_.has_value()) return;  // busy as a receiver
  if (!active_.has_value()) {
    if (queue_.empty()) return;
    active_.emplace(Active{std::move(queue_.front()), 0});
    queue_.pop_front();
  }
  set_state(State::kContend);
  contend();
}

void MxProtocol::on_contention_won() {
  if (!active_.has_value()) {
    if (queue_.empty()) {
      set_state(State::kIdle);
      return;
    }
    active_.emplace(Active{std::move(queue_.front()), 0});
    queue_.pop_front();
  }
  if (!active_->req.reliable) {
    if (!transmit_now(make_data80211(id(), active_->req.dest, {}, active_->req.packet,
                                     active_->req.packet->seq, SimTime::zero()))) {
      set_state(State::kContend);
      post_tx_backoff();
    }
    return;
  }
  transmit_group_rts();
}

void MxProtocol::transmit_group_rts() {
  Active& a = *active_;
  ++a.attempts;
  if (a.attempts > 1) ++stats_.retransmissions;
  // Group RTS: a fixed-size RTS whose receiver list scopes the multicast
  // group (unlike RMAC's MRTS, no per-receiver ordering is needed — the
  // tone feedback is anonymous).
  Frame f;
  f.type = FrameType::kRts;
  f.transmitter = id();
  f.dest = kInvalidNode;
  f.receivers = a.req.receivers;
  f.seq = a.req.packet->seq;
  f.duration = phy_.tone_slot() + phy_.sifs +
               airtime_bytes(kDot11DataFramingBytes + a.req.packet->payload_bytes) +
               phy_.tone_slot() + 4 * phy_.max_propagation;
  f.journey = a.req.packet->journey;
  FramePtr rts = make_frame(std::move(f));
  // Wire cost: standard 20 B RTS regardless of group size.
  stats_.control_tx_time += airtime_bytes(kRtsBytes);
  if (!transmit_now(std::move(rts))) {
    attempt_failed();
  }
}

void MxProtocol::on_transmit_complete(const FramePtr& frame, bool /*aborted*/) {
  if (!active_.has_value()) return;
  switch (frame->type) {
    case FrameType::kRts:
      set_state(State::kWfCtsTone);
      anchor_ = scheduler_.now();
      stats_.abt_check_time += phy_.tone_slot();
      wait_timer_ =
          scheduler_.schedule_in(phy_.tone_slot(), [this] { on_cts_tone_check(); });
      return;
    case FrameType::kData80211:
      if (!active_->req.reliable) {
        active_.reset();
        set_state(State::kIdle);
        post_tx_backoff();
        maybe_start();
        return;
      }
      stats_.reliable_data_tx_time += airtime(*frame);
      set_state(State::kWfNak);
      anchor_ = scheduler_.now();
      stats_.abt_check_time += phy_.tone_slot();
      wait_timer_ = scheduler_.schedule_in(phy_.tone_slot(), [this] { on_nak_check(); });
      return;
    default:
      return;
  }
}

void MxProtocol::on_cts_tone_check() {
  wait_timer_ = kInvalidEvent;
  if (state_ != State::kWfCtsTone) return;
  if (!cts_tone_.detected_in_window(id(), anchor_, scheduler_.now())) {
    attempt_failed();  // nobody heard the RTS
    return;
  }
  const TxRequest& req = active_->req;
  if (!transmit_now(make_data80211(id(), kInvalidNode, req.receivers, req.packet,
                                   req.packet->seq, phy_.tone_slot()))) {
    attempt_failed();
  }
}

void MxProtocol::on_nak_check() {
  wait_timer_ = kInvalidEvent;
  if (state_ != State::kWfNak) return;
  if (nak_tone_.detected_in_window(id(), anchor_, scheduler_.now())) {
    attempt_failed();  // at least one receiver got a corrupted copy
    return;
  }
  // Silence taken as success — the protocol's structural blind spot: a
  // receiver that missed the RTS never raises a NAK.
  ++believed_ok_;
  finish(/*success=*/true);
}

void MxProtocol::attempt_failed() {
  Active& a = *active_;
  if (a.attempts > params_.retry_limit) {
    finish(/*success=*/false);
    return;
  }
  bump_cw();
  set_state(State::kContend);
  backoff_.draw(cw_);
  contend();
}

void MxProtocol::finish(bool success) {
  ReliableSendResult result;
  result.packet = active_->req.packet;
  result.success = success;
  result.transmissions = active_->attempts;
  result.receivers = active_->req.receivers;
  if (success) {
    ++stats_.reliable_delivered;
  } else {
    ++stats_.reliable_dropped;
    result.failed_receivers = active_->req.receivers;  // identity unknown to MX
    result.drop_reason = DropReason::kRetryExhausted;
  }
  active_.reset();
  reset_cw();
  set_state(State::kIdle);
  report_done(result);
  post_tx_backoff();
  maybe_start();
}

void MxProtocol::for_each_pending_reliable(const PendingReliableFn& fn) const {
  if (active_.has_value() && active_->req.reliable && active_->req.packet != nullptr) {
    fn(active_->req.packet, active_->req.receivers);
  }
  MacProtocol::for_each_pending_reliable(fn);
}

// ---------------------------------------------------------------------------
// Receiver side

void MxProtocol::handle_frame(const FramePtr& frame) {
  switch (frame->type) {
    case FrameType::kRts: {
      if (!frame->receiver_index(id()).has_value()) return;
      if (state_ != State::kIdle && state_ != State::kContend) return;
      stats_.control_rx_time += airtime_bytes(kRtsBytes);
      if (rx_.has_value()) return;  // already expecting another sender's data
      // Raise the CTS tone for one slot — simultaneous tones don't collide.
      cts_tone_.set_tone(id(), true);
      scheduler_.schedule_in(phy_.tone_slot(), [this] { cts_tone_.set_tone(id(), false); });
      rx_.emplace(RxRole{frame->transmitter, false, kInvalidEvent});
      // Data should start within tone slot + SIFS (+ slack).
      rx_->timer = scheduler_.schedule_in(phy_.tone_slot() + phy_.sifs + phy_.slot,
                                          [this] { on_rx_timeout(); });
      return;
    }
    case FrameType::kData80211: {
      if (frame->duration <= SimTime::zero()) {
        deliver_up(*frame);  // one-shot unreliable data (hellos)
        return;
      }
      if (frame->receiver_index(id()).has_value() &&
          remember_data(frame->transmitter, frame->seq)) {
        deliver_up(*frame);
      }
      if (rx_.has_value() && frame->transmitter == rx_->sender) {
        end_rx_role(/*nak=*/false);  // intact reception: stay silent
      }
      return;
    }
    default:
      return;  // MX uses no CTS/ACK/RAK frames
  }
}

void MxProtocol::on_carrier_hook(bool busy) {
  if (!rx_.has_value()) return;
  if (busy && !rx_->data_arriving) {
    rx_->data_arriving = true;
    if (rx_->timer != kInvalidEvent) {
      scheduler_.cancel(rx_->timer);
      rx_->timer = kInvalidEvent;
    }
  } else if (!busy && rx_->data_arriving) {
    // Reception ended without an intact frame for us: negative feedback.
    end_rx_role(/*nak=*/true);
  }
}

void MxProtocol::end_rx_role(bool nak) {
  if (rx_->timer != kInvalidEvent) scheduler_.cancel(rx_->timer);
  rx_.reset();
  if (nak) {
    nak_tone_.set_tone(id(), true);
    scheduler_.schedule_in(phy_.tone_slot(), [this] { nak_tone_.set_tone(id(), false); });
  }
  maybe_start();
}

void MxProtocol::on_rx_timeout() {
  // The data frame never started: the structural blind spot again — the
  // receiver simply gives up (it cannot know when a NAK window would be).
  rx_->timer = kInvalidEvent;
  end_rx_role(/*nak=*/false);
}

}  // namespace rmacsim
