// 802.11MX-style receiver-initiated reliable multicast MAC (Gupta, Shankar,
// Lalwani, ICC'03), the contemporaneous busy-tone design the paper contrasts
// itself with in §2.
//
// Where RMAC is sender-initiated (positive per-receiver feedback via ordered
// ABTs), MX keeps the 802.11 structure and uses *negative* feedback:
//
//   contention -> multicast RTS -> [CTS tone window] -> DATA -> [NAK window]
//
// Every receiver of the RTS raises the CTS tone simultaneously (tones do not
// collide); a receiver whose DATA reception is corrupted raises the NAK tone
// after the reception ends; the sender retransmits to the whole group while
// a NAK is sensed.  The structural weakness the paper calls out — and which
// bench/ablation_mx measures — is that a receiver that missed the RTS never
// enters the state to send a NAK, so the sender can conclude success while
// receivers are missing: no full reliability.
#pragma once

#include <optional>

#include "mac/dcf/dot11_base.hpp"
#include "phy/tone_channel.hpp"

namespace rmacsim {

class MxProtocol final : public Dot11Base {
public:
  // `cts_tone` and `nak_tone` are narrowband channels (physically the same
  // hardware as RMAC's RBT/ABT pair).
  MxProtocol(Scheduler& scheduler, Radio& radio, ToneChannel& cts_tone,
             ToneChannel& nak_tone, Rng rng, MacParams params = MacParams{},
             Tracer* tracer = nullptr);
  ~MxProtocol() override;

  void reliable_send(AppPacketPtr packet, std::vector<NodeId> receivers) override;
  void unreliable_send(AppPacketPtr packet, NodeId dest) override;
  [[nodiscard]] std::string name() const override { return "802.11MX"; }

  void on_transmit_complete(const FramePtr& frame, bool aborted) override;
  void on_carrier_hook(bool busy) override;

  enum class State : std::uint8_t { kIdle, kContend, kWfCtsTone, kWfNak };
  [[nodiscard]] State state() const noexcept { return state_; }

  // Sender-believed successes that may silently miss receivers; exposed so
  // the ablation bench can quantify the false-positive rate.
  [[nodiscard]] std::uint64_t believed_successes() const noexcept { return believed_ok_; }

  void for_each_pending_reliable(const PendingReliableFn& fn) const override;

private:
  struct Active {
    TxRequest req;
    unsigned attempts{0};
  };
  // Receiver-side expectation established by a group RTS.
  struct RxRole {
    NodeId sender;
    bool data_arriving{false};
    EventId timer{kInvalidEvent};
  };

  void on_contention_won() override;
  void handle_frame(const FramePtr& frame) override;

  void maybe_start();
  void transmit_group_rts();
  void on_cts_tone_check();
  void on_nak_check();
  void attempt_failed();
  void finish(bool success);

  void end_rx_role(bool nak);
  void on_rx_timeout();

  // FSM edges funnel through here so rmacsim_mac_state_transitions_total
  // counts every protocol the same way.
  void set_state(State s) noexcept {
    if (s != state_) ++stats_.state_transitions;
    state_ = s;
  }

  ToneChannel& cts_tone_;
  ToneChannel& nak_tone_;
  State state_{State::kIdle};
  std::optional<Active> active_;
  std::optional<RxRole> rx_;
  SimTime anchor_{SimTime::zero()};
  EventId wait_timer_{kInvalidEvent};
  std::uint64_t believed_ok_{0};
};

}  // namespace rmacsim
