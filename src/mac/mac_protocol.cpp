#include "mac/mac_protocol.hpp"

// Interface-only translation unit; anchors the vtable for MacUpper.

namespace rmacsim {}
