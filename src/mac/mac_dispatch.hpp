// Devirtualized radio-to-MAC dispatch.
//
// Every frame delivery, carrier-sense edge, and transmit completion used to
// reach the MAC through a virtual RadioListener call on MacProtocol.  Those
// are the hottest calls in the simulator, and a run only ever uses one of
// six concrete protocol types — all declared `final` — so the indirection
// buys nothing.  MacDispatch is the hot-path front door: a std::variant over
// the concrete protocol pointers whose std::visit resolves to direct
// (inlinable, especially under LTO) member calls.
//
// The virtual MacProtocol interface is untouched and remains the seam for
// tests and tools; binding a protocol into a MacDispatch merely replaces the
// radio's listener registration (the protocol constructors still register
// themselves, the network builder then points the radio here instead).
#pragma once

#include <variant>

#include "mac/bmmm/bmmm_protocol.hpp"
#include "mac/bmw/bmw_protocol.hpp"
#include "mac/dcf/dcf_protocol.hpp"
#include "mac/lamm/lamm_protocol.hpp"
#include "mac/mx/mx_protocol.hpp"
#include "mac/rmac/rmac_protocol.hpp"

namespace rmacsim {

class MacDispatch final : public RadioListener {
public:
  MacDispatch() = default;

  // One overload per concrete protocol: the variant alternative is chosen at
  // bind time, where the builder still knows the static type.
  void bind(RmacProtocol& mac) noexcept { mac_ = &mac; }
  void bind(BmmmProtocol& mac) noexcept { mac_ = &mac; }
  void bind(DcfProtocol& mac) noexcept { mac_ = &mac; }
  void bind(BmwProtocol& mac) noexcept { mac_ = &mac; }
  void bind(MxProtocol& mac) noexcept { mac_ = &mac; }
  void bind(LammProtocol& mac) noexcept { mac_ = &mac; }

  [[nodiscard]] bool bound() const noexcept {
    return !std::holds_alternative<std::monostate>(mac_);
  }
  // Generic (virtual-interface) view for diagnostics and tests.
  [[nodiscard]] MacProtocol* protocol() const noexcept {
    return std::visit(
        [](auto alt) -> MacProtocol* {
          if constexpr (std::is_same_v<decltype(alt), std::monostate>) {
            return nullptr;
          } else {
            return alt;
          }
        },
        mac_);
  }

  void on_frame_received(const FramePtr& frame) override {
    visit([&](auto& mac) { mac.on_frame_received(frame); });
  }
  void on_carrier_changed(bool busy) override {
    visit([&](auto& mac) { mac.on_carrier_changed(busy); });
  }
  void on_transmit_complete(const FramePtr& frame, bool aborted) override {
    visit([&](auto& mac) { mac.on_transmit_complete(frame, aborted); });
  }

private:
  template <typename F>
  void visit(F&& f) {
    std::visit(
        [&](auto alt) {
          if constexpr (!std::is_same_v<decltype(alt), std::monostate>) f(*alt);
        },
        mac_);
  }

  std::variant<std::monostate, RmacProtocol*, BmmmProtocol*, DcfProtocol*, BmwProtocol*,
               MxProtocol*, LammProtocol*>
      mac_{};
};

}  // namespace rmacsim
