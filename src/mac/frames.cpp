#include "mac/frame_builders.hpp"

#include <memory>
#include <utility>

#include "phy/frame_pool.hpp"

namespace rmacsim {

namespace {
// Frames come from the thread-local frame pool: steady-state construction
// reuses the block of a frame that already left the air.
FramePtr finish(Frame f) { return make_frame(std::move(f)); }
}  // namespace

FramePtr make_mrts(NodeId transmitter, std::vector<NodeId> receivers, std::uint32_t seq,
                   JourneyId journey) {
  Frame f;
  f.type = FrameType::kMrts;
  f.transmitter = transmitter;
  f.dest = kInvalidNode;  // MRTS addresses via the receiver sequence only
  f.receivers = std::move(receivers);
  f.seq = seq;
  f.journey = journey;
  return finish(std::move(f));
}

FramePtr make_reliable_data(NodeId transmitter, std::vector<NodeId> receivers,
                            AppPacketPtr packet, std::uint32_t seq) {
  Frame f;
  f.type = FrameType::kReliableData;
  f.transmitter = transmitter;
  f.dest = kInvalidNode;
  f.receivers = std::move(receivers);
  f.journey = packet ? packet->journey : kInvalidJourney;
  f.packet = std::move(packet);
  f.seq = seq;
  return finish(std::move(f));
}

FramePtr make_unreliable_data(NodeId transmitter, NodeId dest, AppPacketPtr packet,
                              std::uint32_t seq) {
  Frame f;
  f.type = FrameType::kUnreliableData;
  f.transmitter = transmitter;
  f.dest = dest;
  f.journey = packet ? packet->journey : kInvalidJourney;
  f.packet = std::move(packet);
  f.seq = seq;
  return finish(std::move(f));
}

FramePtr make_rts(NodeId transmitter, NodeId dest, SimTime duration, JourneyId journey) {
  Frame f;
  f.type = FrameType::kRts;
  f.transmitter = transmitter;
  f.dest = dest;
  f.duration = duration;
  f.journey = journey;
  return finish(std::move(f));
}

FramePtr make_cts(NodeId transmitter, NodeId dest, SimTime duration, std::uint32_t seq,
                  JourneyId journey) {
  Frame f;
  f.type = FrameType::kCts;
  f.transmitter = transmitter;
  f.dest = dest;
  f.duration = duration;
  f.seq = seq;
  f.journey = journey;
  return finish(std::move(f));
}

FramePtr make_data80211(NodeId transmitter, NodeId dest, std::vector<NodeId> group,
                        AppPacketPtr packet, std::uint32_t seq, SimTime duration) {
  Frame f;
  f.type = FrameType::kData80211;
  f.transmitter = transmitter;
  f.dest = dest;
  f.receivers = std::move(group);
  f.journey = packet ? packet->journey : kInvalidJourney;
  f.packet = std::move(packet);
  f.seq = seq;
  f.duration = duration;
  return finish(std::move(f));
}

FramePtr make_ack(NodeId transmitter, NodeId dest, std::uint32_t seq, JourneyId journey) {
  Frame f;
  f.type = FrameType::kAck;
  f.transmitter = transmitter;
  f.dest = dest;
  f.seq = seq;
  f.journey = journey;
  return finish(std::move(f));
}

FramePtr make_rak(NodeId transmitter, NodeId dest, std::uint32_t seq, SimTime duration,
                  JourneyId journey) {
  Frame f;
  f.type = FrameType::kRak;
  f.transmitter = transmitter;
  f.dest = dest;
  f.seq = seq;
  f.duration = duration;
  f.journey = journey;
  return finish(std::move(f));
}

}  // namespace rmacsim
