// IEEE 802.11 DCF baseline.
//
// Reliable unicast uses the RTS/CTS/DATA/ACK exchange with NAV-based virtual
// carrier sense; multicast/broadcast transmit the data frame once without
// recovery — exactly the 802.11 behaviour the paper's introduction
// describes.  Serves both as a standalone baseline and as the behavioural
// reference for the BMMM/BMW extensions built on Dot11Base.
#pragma once

#include <optional>

#include "mac/dcf/dot11_base.hpp"

namespace rmacsim {

class DcfProtocol final : public Dot11Base {
public:
  DcfProtocol(Scheduler& scheduler, Radio& radio, Rng rng, MacParams params = MacParams{},
              Tracer* tracer = nullptr);

  void reliable_send(AppPacketPtr packet, std::vector<NodeId> receivers) override;
  void unreliable_send(AppPacketPtr packet, NodeId dest) override;
  [[nodiscard]] std::string name() const override { return "802.11-DCF"; }

  void on_transmit_complete(const FramePtr& frame, bool aborted) override;

  enum class State : std::uint8_t { kIdle, kContend, kWfCts, kWfAck };
  [[nodiscard]] State state() const noexcept { return state_; }

  void for_each_pending_reliable(const PendingReliableFn& fn) const override;

private:
  struct Active {
    TxRequest req;
    unsigned attempts{0};
  };

  void on_contention_won() override;
  void handle_frame(const FramePtr& frame) override;

  void maybe_start();
  void start_unicast_exchange();
  void on_cts_timeout();
  void on_ack_timeout();
  void attempt_failed();
  void finish(bool success);

  [[nodiscard]] SimTime exchange_duration_after_rts(std::size_t payload) const;

  // FSM edges funnel through here so rmacsim_mac_state_transitions_total
  // counts every protocol the same way.
  void set_state(State s) noexcept {
    if (s != state_) ++stats_.state_transitions;
    state_ = s;
  }

  State state_{State::kIdle};
  std::optional<Active> active_;
  EventId timeout_{kInvalidEvent};
};

}  // namespace rmacsim
