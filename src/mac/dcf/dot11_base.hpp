// Shared IEEE 802.11 DCF machinery for the baseline protocols (DCF unicast,
// BMMM, BMW): physical + virtual carrier sense (NAV), DIFS deference,
// slot-based contention backoff, and SIFS-spaced responses.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "mac/backoff.hpp"
#include "mac/frame_builders.hpp"
#include "mac/mac_protocol.hpp"
#include "phy/medium.hpp"
#include "sim/trace.hpp"

namespace rmacsim {

class Dot11Base : public MacProtocol {
public:
  [[nodiscard]] NodeId id() const noexcept override { return radio_.id(); }

  // The devirtualized front door (mac/mac_dispatch.hpp) forwards the radio
  // events straight to the protected listener overrides below.
  friend class MacDispatch;

protected:
  Dot11Base(Scheduler& scheduler, Radio& radio, Rng rng, MacParams params, Tracer* tracer);
  ~Dot11Base() override;

  // --- Carrier sense -------------------------------------------------------
  [[nodiscard]] bool nav_clear() const noexcept { return scheduler_.now() >= nav_until_; }
  // Channel idle (physically and virtually) and has been physically idle for
  // at least DIFS — the predicate a backoff slot decrements under.
  [[nodiscard]] bool idle_for_difs() const noexcept;
  void update_nav(const Frame& frame);

  // --- Contention ----------------------------------------------------------
  // Subclasses implement: the contention winner action, and frame handling.
  virtual void on_contention_won() = 0;
  virtual void handle_frame(const FramePtr& frame) = 0;

  void contend();           // ensure the backoff countdown is running
  void post_tx_backoff();   // fresh draw after any completed transmission
  void bump_cw() noexcept {
    if (cw_ < params_.cw_max) ++stats_.cw_escalations;
    cw_ = std::min(2 * cw_ + 1, params_.cw_max);
  }
  void reset_cw() noexcept { cw_ = params_.cw_min; }

  // Transmit `frame` after a SIFS (responses are not subject to contention).
  // If the radio turns out to be busy at send time the frame is dropped and
  // `on_drop` (if any) runs — initiator-side callers use it to convert the
  // drop into a normal timeout/retry instead of stalling.
  void respond_after_sifs(FramePtr frame, std::function<void()> on_drop = nullptr);
  // Returns false if the frame had to be dropped (radio already transmitting).
  [[nodiscard]] bool transmit_now(FramePtr frame);

  // Count control airtime for a frame this node transmitted/received.
  void count_control_tx(const Frame& frame);
  void count_control_rx(const Frame& frame);

  // Duplicate-delivery filter for retransmitted data (per transmitter).
  [[nodiscard]] bool remember_data(NodeId transmitter, std::uint32_t seq);
  [[nodiscard]] bool have_data(NodeId transmitter, std::uint32_t seq) const;

  [[nodiscard]] SimTime airtime(const Frame& frame) const;
  [[nodiscard]] SimTime airtime_bytes(std::size_t bytes) const;

  // --- RadioListener -------------------------------------------------------
  void on_frame_received(const FramePtr& frame) final;
  void on_carrier_changed(bool busy) final;
  // Subclass hook invoked from on_carrier_changed (after NAV bookkeeping).
  virtual void on_carrier_hook(bool /*busy*/) {}

  Scheduler& scheduler_;
  Radio& radio_;
  Rng rng_;
  MacParams params_;
  Tracer* tracer_;
  const PhyParams& phy_;

  BackoffEngine backoff_;
  unsigned cw_;
  SimTime nav_until_{SimTime::zero()};
  SimTime last_busy_end_{SimTime::zero()};

private:
  std::unordered_map<NodeId, std::unordered_set<std::uint32_t>> seen_data_;
};

}  // namespace rmacsim
