#include "mac/dcf/dcf_protocol.hpp"

#include <cassert>
#include <utility>

namespace rmacsim {

// ===========================================================================
// Dot11Base

Dot11Base::Dot11Base(Scheduler& scheduler, Radio& radio, Rng rng, MacParams params,
                     Tracer* tracer)
    : scheduler_{scheduler},
      radio_{radio},
      rng_{rng},
      params_{params},
      tracer_{tracer},
      phy_{radio.medium().params()},
      backoff_{scheduler, radio.medium().params().slot, rng.fork(0xd0f)},
      cw_{params.cw_min} {
  radio_.set_listener(this);
  backoff_.set_callbacks([this] { return idle_for_difs(); }, [this] { on_contention_won(); });
}

Dot11Base::~Dot11Base() { radio_.set_listener(nullptr); }

bool Dot11Base::idle_for_difs() const noexcept {
  if (radio_.carrier_busy() || !nav_clear()) return false;
  return scheduler_.now() - last_busy_end_ >= phy_.difs;
}

void Dot11Base::update_nav(const Frame& frame) {
  if (params_.fault_ignore_nav) return;  // mutation: deaf to virtual carrier sense
  if (frame.duration <= SimTime::zero()) return;
  const SimTime until = scheduler_.now() + frame.duration;
  if (until > nav_until_) nav_until_ = until;
}

void Dot11Base::contend() { backoff_.ensure_running(cw_); }

void Dot11Base::post_tx_backoff() {
  backoff_.draw(cw_);
  backoff_.ensure_running(cw_);
}

void Dot11Base::respond_after_sifs(FramePtr frame, std::function<void()> on_drop) {
  scheduler_.schedule_in(
      phy_.sifs, [this, frame = std::move(frame), on_drop = std::move(on_drop)]() mutable {
        if (!transmit_now(std::move(frame)) && on_drop) on_drop();
      });
}

bool Dot11Base::transmit_now(FramePtr frame) {
  // A frame colliding with our own transmission (e.g. a scheduled response
  // overlapping an exchange we just started) is dropped rather than
  // violating half-duplex; callers convert the drop into a retry.
  if (radio_.transmitting()) return false;
  count_frame_tx(*frame);
  radio_.transmit(std::move(frame));
  return true;
}

void Dot11Base::count_control_tx(const Frame& frame) {
  stats_.control_tx_time += airtime(frame);
}
void Dot11Base::count_control_rx(const Frame& frame) {
  stats_.control_rx_time += airtime(frame);
}

bool Dot11Base::remember_data(NodeId transmitter, std::uint32_t seq) {
  return seen_data_[transmitter].insert(seq).second;
}
bool Dot11Base::have_data(NodeId transmitter, std::uint32_t seq) const {
  const auto it = seen_data_.find(transmitter);
  return it != seen_data_.end() && it->second.contains(seq);
}

SimTime Dot11Base::airtime(const Frame& frame) const {
  return phy_.frame_airtime(frame.wire_bytes());
}
SimTime Dot11Base::airtime_bytes(std::size_t bytes) const {
  return phy_.frame_airtime(bytes);
}

void Dot11Base::on_frame_received(const FramePtr& frame) {
  count_frame_rx(*frame);
  if (!frame->addressed_to(id())) {
    update_nav(*frame);  // virtual carrier sense from overheard traffic
    return;
  }
  if (frame->is_control()) count_control_rx(*frame);
  handle_frame(frame);
}

void Dot11Base::on_carrier_changed(bool busy) {
  if (!busy) last_busy_end_ = scheduler_.now();
  on_carrier_hook(busy);
}

// ===========================================================================
// DcfProtocol

DcfProtocol::DcfProtocol(Scheduler& scheduler, Radio& radio, Rng rng, MacParams params,
                         Tracer* tracer)
    : Dot11Base{scheduler, radio, rng, params, tracer} {}

void DcfProtocol::reliable_send(AppPacketPtr packet, std::vector<NodeId> receivers) {
  assert(packet != nullptr);
  if (receivers.empty()) {
    ReliableSendResult ok;
    ok.packet = std::move(packet);
    ok.success = true;
    report_done(std::move(ok));
    return;
  }
  if (!queue_admit(params_)) {
    ReliableSendResult r;
    r.packet = std::move(packet);
    r.failed_receivers = std::move(receivers);
    r.receivers = r.failed_receivers;
    r.drop_reason = DropReason::kQueueOverflow;
    report_done(r);
    return;
  }
  TxRequest req;
  req.reliable = true;
  req.packet = std::move(packet);
  req.receivers = std::move(receivers);
  ++stats_.reliable_requests;
  push_request(std::move(req));
  maybe_start();
}

void DcfProtocol::unreliable_send(AppPacketPtr packet, NodeId dest) {
  assert(packet != nullptr);
  if (!queue_admit(params_)) return;
  TxRequest req;
  req.reliable = false;
  req.packet = std::move(packet);
  req.dest = dest;
  ++stats_.unreliable_requests;
  push_request(std::move(req));
  maybe_start();
}

void DcfProtocol::maybe_start() {
  if (state_ != State::kIdle && state_ != State::kContend) return;
  if (!active_.has_value()) {
    if (queue_.empty()) return;
    active_.emplace(Active{std::move(queue_.front()), 0});
    queue_.pop_front();
  }
  set_state(State::kContend);
  contend();
}

void DcfProtocol::on_contention_won() {
  if (!active_.has_value()) {
    if (queue_.empty()) {
      set_state(State::kIdle);
      return;
    }
    active_.emplace(Active{std::move(queue_.front()), 0});
    queue_.pop_front();
  }
  const TxRequest& req = active_->req;
  const bool unicast_reliable = req.reliable && req.receivers.size() == 1;
  if (unicast_reliable) {
    start_unicast_exchange();
    return;
  }
  // 802.11 multicast/broadcast and the unreliable service: one data frame,
  // no reservation, no recovery.
  ++active_->attempts;
  const NodeId dest = req.reliable ? kInvalidNode : req.dest;
  if (!transmit_now(make_data80211(id(), dest, req.receivers, req.packet,
                                   req.packet ? req.packet->seq : 0, SimTime::zero()))) {
    set_state(State::kContend);
    post_tx_backoff();  // rare: retry the contention
  }
}

SimTime DcfProtocol::exchange_duration_after_rts(std::size_t payload) const {
  return phy_.sifs + airtime_bytes(kCtsBytes) + phy_.sifs +
         airtime_bytes(kDot11DataFramingBytes + payload) + phy_.sifs +
         airtime_bytes(kAckBytes) + 4 * phy_.max_propagation;
}

void DcfProtocol::start_unicast_exchange() {
  const TxRequest& req = active_->req;
  ++active_->attempts;
  if (active_->attempts > 1) ++stats_.retransmissions;
  set_state(State::kWfCts);
  const NodeId dest = req.receivers.front();
  FramePtr rts = make_rts(id(), dest, exchange_duration_after_rts(req.packet->payload_bytes),
                          req.packet->journey);
  count_control_tx(*rts);
  if (!transmit_now(std::move(rts))) attempt_failed();
}

void DcfProtocol::on_transmit_complete(const FramePtr& frame, bool /*aborted*/) {
  switch (frame->type) {
    case FrameType::kRts:
      // Await the CTS: SIFS + CTS airtime + turnaround slack.
      timeout_ = scheduler_.schedule_in(
          phy_.sifs + airtime_bytes(kCtsBytes) + 2 * phy_.max_propagation + phy_.slot,
          [this] { on_cts_timeout(); });
      return;
    case FrameType::kData80211: {
      if (active_.has_value() && active_->req.reliable && active_->req.receivers.size() == 1) {
        stats_.reliable_data_tx_time += airtime(*frame);
        set_state(State::kWfAck);
        timeout_ = scheduler_.schedule_in(
            phy_.sifs + airtime_bytes(kAckBytes) + 2 * phy_.max_propagation + phy_.slot,
            [this] { on_ack_timeout(); });
        return;
      }
      // Broadcast / multicast / unreliable data: done after one shot.
      if (active_.has_value() && active_->req.reliable) {
        stats_.reliable_data_tx_time += airtime(*frame);
        finish(/*success=*/true);  // 802.11 reports multicast success blindly
      } else {
        active_.reset();
        set_state(State::kIdle);
        post_tx_backoff();
        maybe_start();
      }
      return;
    }
    case FrameType::kCts:
    case FrameType::kAck:
      return;  // responder-side frames; nothing to follow up
    default:
      return;
  }
}

void DcfProtocol::handle_frame(const FramePtr& frame) {
  switch (frame->type) {
    case FrameType::kRts:
      // Honour virtual carrier sense, and never derail an exchange of our
      // own to answer someone else's reservation.
      if (nav_clear() && (state_ == State::kIdle || state_ == State::kContend)) {
        FramePtr cts = make_cts(id(), frame->transmitter,
                                frame->duration - phy_.sifs - airtime_bytes(kCtsBytes),
                                /*seq=*/0, frame->journey);
        count_control_tx(*cts);
        respond_after_sifs(std::move(cts));
      }
      return;
    case FrameType::kCts:
      if (state_ == State::kWfCts && active_.has_value() &&
          frame->transmitter == active_->req.receivers.front()) {
        scheduler_.cancel(timeout_);
        timeout_ = kInvalidEvent;
        const TxRequest& req = active_->req;
        FramePtr data = make_data80211(id(), req.receivers.front(), {}, req.packet,
                                       req.packet->seq,
                                       phy_.sifs + airtime_bytes(kAckBytes));
        respond_after_sifs(std::move(data), [this] {
          if (state_ == State::kWfCts && active_.has_value()) attempt_failed();
        });
      }
      return;
    case FrameType::kData80211: {
      // Dedup applies only to data frames that belong to a recovery exchange
      // (duration > 0: they reserve the medium for their ACK, and can be
      // retransmitted).  One-shot data — hellos and 802.11-style multicast —
      // shares the transmitter's seq space with reliable traffic and must
      // never be swallowed by the duplicate filter.
      if (frame->duration <= SimTime::zero()) {
        deliver_up(*frame);
        return;
      }
      if (remember_data(frame->transmitter, frame->seq)) deliver_up(*frame);
      if (frame->dest == id()) {
        FramePtr ack = make_ack(id(), frame->transmitter, frame->seq, frame->journey);
        count_control_tx(*ack);
        respond_after_sifs(std::move(ack));
      }
      return;
    }
    case FrameType::kAck:
      if (state_ == State::kWfAck && active_.has_value()) {
        scheduler_.cancel(timeout_);
        timeout_ = kInvalidEvent;
        finish(/*success=*/true);
      }
      return;
    default:
      return;
  }
}

void DcfProtocol::on_cts_timeout() {
  timeout_ = kInvalidEvent;
  attempt_failed();
}

void DcfProtocol::on_ack_timeout() {
  timeout_ = kInvalidEvent;
  attempt_failed();
}

void DcfProtocol::attempt_failed() {
  assert(active_.has_value());
  if (active_->attempts > params_.retry_limit) {
    finish(/*success=*/false);
    return;
  }
  bump_cw();
  set_state(State::kContend);
  backoff_.draw(cw_);
  contend();
}

void DcfProtocol::finish(bool success) {
  assert(active_.has_value());
  ReliableSendResult result;
  result.packet = active_->req.packet;
  result.success = success;
  result.transmissions = active_->attempts;
  result.receivers = active_->req.receivers;
  if (success) {
    ++stats_.reliable_delivered;
  } else {
    ++stats_.reliable_dropped;
    result.failed_receivers = active_->req.receivers;
    result.drop_reason = DropReason::kRetryExhausted;
  }
  active_.reset();
  reset_cw();
  set_state(State::kIdle);
  report_done(result);
  post_tx_backoff();
  maybe_start();
}

void DcfProtocol::for_each_pending_reliable(const PendingReliableFn& fn) const {
  if (active_.has_value() && active_->req.reliable && active_->req.packet != nullptr) {
    fn(active_->req.packet, active_->req.receivers);
  }
  MacProtocol::for_each_pending_reliable(fn);
}

}  // namespace rmacsim
