#include "mac/rmac/rmac_protocol.hpp"

#include <algorithm>
#include <cassert>
#include "sim/strfmt.hpp"
#include <utility>

#include "mac/frame_builders.hpp"

namespace rmacsim {

namespace {
constexpr std::uint64_t kBackoffStream = 0x62616b6f66;  // "bakof"
}

const char* RmacProtocol::to_string(State s) noexcept {
  switch (s) {
    case State::kIdle: return "IDLE";
    case State::kBackoff: return "BACKOFF";
    case State::kWfRbt: return "WF_RBT";
    case State::kWfRdata: return "WF_RDATA";
    case State::kWfAbt: return "WF_ABT";
    case State::kTxMrts: return "TX_MRTS";
    case State::kTxRdata: return "TX_RDATA";
    case State::kTxUnrdata: return "TX_UNRDATA";
  }
  return "?";
}

RmacProtocol::RmacProtocol(Scheduler& scheduler, Radio& radio, ToneChannel& rbt,
                           ToneChannel& abt, Rng rng, Params params, Tracer* tracer)
    : scheduler_{scheduler},
      radio_{radio},
      rbt_{rbt},
      abt_{abt},
      rng_{rng},
      params_{params},
      tracer_{tracer},
      backoff_{scheduler, SimTime::us(20), rng.fork(kBackoffStream)},
      cw_{params.mac.cw_min} {
  radio_.set_listener(this);
  backoff_.set_callbacks([this] { return channels_idle(); }, [this] { on_backoff_fire(); });
}

RmacProtocol::~RmacProtocol() {
  radio_.set_listener(nullptr);
  rbt_.unsubscribe_edges(id());
}

void RmacProtocol::set_state(State next, const char* why) {
  if (state_ == next) return;
  ++stats_.state_transitions;
  if (tracer_ != nullptr && tracer_->wants(TraceCategory::kMacState)) {
    TraceRecord r{scheduler_.now(), TraceCategory::kMacState, id(), {}};
    r.event = TraceEvent::kMacState;
    r.aux = (static_cast<std::uint32_t>(state_) << 8) | static_cast<std::uint32_t>(next);
    tracer_->emit(std::move(r), [&] {
      return cat(to_string(state_), "->", to_string(next), " [", why, "]");
    });
  }
  state_ = next;
}

bool RmacProtocol::channels_idle() const {
  if (radio_.carrier_busy()) return false;
  if (!params_.rbt_protection) return true;
  return !rbt_.my_tone_on(id()) && !rbt_.sensed_at(id());
}

// ---------------------------------------------------------------------------
// Service entry points

void RmacProtocol::reliable_send(AppPacketPtr packet, std::vector<NodeId> receivers) {
  assert(packet != nullptr);
  if (receivers.empty()) {
    ReliableSendResult ok;
    ok.packet = std::move(packet);
    ok.success = true;
    report_done(std::move(ok));
    return;
  }
  // Protocol refinement (§3.4): cap the receivers per invocation; a larger
  // set is split across several Reliable Send invocations, each separated by
  // a backoff procedure (they are distinct queue entries).
  const std::size_t cap = params_.mac.max_receivers;
  for (std::size_t base = 0; base < receivers.size(); base += cap) {
    const std::size_t end = std::min(base + cap, receivers.size());
    if (!queue_admit(params_.mac)) {
      ReliableSendResult r;
      r.packet = packet;
      r.failed_receivers.assign(receivers.begin() + static_cast<std::ptrdiff_t>(base),
                                receivers.begin() + static_cast<std::ptrdiff_t>(end));
      r.receivers = r.failed_receivers;
      r.drop_reason = DropReason::kQueueOverflow;
      if (!params_.faults.swallow_drop_report) report_done(r);
      continue;
    }
    TxRequest req;
    req.reliable = true;
    req.packet = packet;
    req.receivers.assign(receivers.begin() + static_cast<std::ptrdiff_t>(base),
                         receivers.begin() + static_cast<std::ptrdiff_t>(end));
    ++stats_.reliable_requests;
    enqueue(std::move(req));
  }
}

void RmacProtocol::unreliable_send(AppPacketPtr packet, NodeId dest) {
  assert(packet != nullptr);
  if (!queue_admit(params_.mac)) return;
  TxRequest req;
  req.reliable = false;
  req.packet = std::move(packet);
  req.dest = dest;
  ++stats_.unreliable_requests;
  enqueue(std::move(req));
}

void RmacProtocol::enqueue(TxRequest req) {
  push_request(std::move(req));
  maybe_start();
}

void RmacProtocol::maybe_start() {
  if (state_ != State::kIdle && state_ != State::kBackoff) return;
  if (!active_.has_value()) {
    if (queue_.empty()) {
      // Post-transmission backoff may still be counting down with nothing
      // queued (BACKOFF with an empty queue is a legal state, C9).
      if (!backoff_.running()) set_state(State::kIdle, "queue-empty");
      return;
    }
    Active a;
    a.req = std::move(queue_.front());
    queue_.pop_front();
    a.remaining = a.req.receivers;
    active_.emplace(std::move(a));
  }
  // C1/C10: idle channels and BI == 0 -> transmit immediately; otherwise the
  // backoff procedure is (re)entered, drawing BI from CW if none is pending.
  if (channels_idle() && backoff_.clear_to_send() && !backoff_.running()) {
    begin_transmission();
  } else {
    backoff_.ensure_running(cw_);
    set_state(State::kBackoff, "contend");
  }
}

void RmacProtocol::on_backoff_fire() {
  // BI hit zero on an idle slot (C6/C14), or the post-TX backoff drained
  // with nothing to send (C9).
  if (!active_.has_value() && queue_.empty()) {
    set_state(State::kIdle, "C9");
    return;
  }
  if (!active_.has_value()) {
    Active a;
    a.req = std::move(queue_.front());
    queue_.pop_front();
    a.remaining = a.req.receivers;
    active_.emplace(std::move(a));
  }
  begin_transmission();
}

// ---------------------------------------------------------------------------
// Sender side

void RmacProtocol::begin_transmission() {
  assert(active_.has_value());
  backoff_.stop();
  if (active_->req.reliable) {
    transmit_mrts();
  } else {
    set_state(State::kTxUnrdata, "C1/C6");
    FramePtr frame = make_unreliable_data(id(), active_->req.dest, active_->req.packet,
                                          active_->req.packet->seq);
    tx_start_ = scheduler_.now();
    watch_rbt_during_tx();
    count_frame_tx(*frame);
    radio_.transmit(std::move(frame));
  }
}

void RmacProtocol::transmit_mrts() {
  assert(active_.has_value() && !active_->remaining.empty());
  set_state(State::kTxMrts, "C10/C14");
  FramePtr frame = make_mrts(id(), active_->remaining, active_->req.packet->seq,
                             active_->req.packet->journey);
  ++active_->attempts;
  ++stats_.mrts_transmissions;
  stats_.mrts_lengths_bytes.push_back(static_cast<double>(frame->wire_bytes()));
  tx_start_ = scheduler_.now();
  watch_rbt_during_tx();
  count_frame_tx(*frame);
  radio_.transmit(std::move(frame));
}

void RmacProtocol::watch_rbt_during_tx() {
  if (!params_.rbt_protection) return;
  rbt_.subscribe_edges(id(), [this](NodeId) { on_rbt_edge(); });
  // A tone whose leading edge is already on the air would produce no new
  // edge event; detect it after one CCA period.
  if (rbt_.sensed_at(id())) {
    scheduler_.schedule_in(rbt_.params().cca, [this] { on_rbt_edge(); });
  }
}

void RmacProtocol::on_rbt_edge() {
  // Step 3 (§3.2): a node transmitting an MRTS (or an unreliable data frame,
  // §3.3.3 step 2) that senses an RBT aborts to keep the protected
  // receiver's reception collision-free.
  if (state_ != State::kTxMrts && state_ != State::kTxUnrdata) return;
  if (!radio_.transmitting()) return;
  if (params_.faults.ignore_rbt_during_tx) return;  // mutation: keep transmitting
  radio_.abort_transmission();
}

void RmacProtocol::on_transmit_complete(const FramePtr& frame, bool aborted) {
  const SimTime elapsed = scheduler_.now() - tx_start_;
  rbt_.unsubscribe_edges(id());
  switch (frame->type) {
    case FrameType::kMrts:
      stats_.control_tx_time += elapsed;
      if (aborted) {
        ++stats_.mrts_aborted;
        fail_attempt("C11-abort", DropReason::kMrtsAbort);
        return;
      }
      set_state(State::kWfRbt, "C17");
      anchor_ = scheduler_.now();
      wait_timer_ = scheduler_.schedule_in(rbt_.params().tone_slot(),
                                           [this] { on_wf_rbt_expiry(); });
      return;
    case FrameType::kReliableData:
      stats_.reliable_data_tx_time += elapsed;
      set_state(State::kWfAbt, "C19");
      anchor_ = scheduler_.now();
      abt_slot_ = 0;
      abt_seen_.assign(active_->remaining.size(), false);
      wait_timer_ = scheduler_.schedule_in(abt_.params().tone_slot(),
                                           [this] { on_abt_slot_boundary(); });
      return;
    case FrameType::kUnreliableData:
      // Aborted or not, the unreliable service performs exactly one
      // transmission attempt (§3.3.3); no recovery.
      active_.reset();
      post_tx_backoff();
      return;
    default:
      assert(false && "RMAC transmitted a foreign frame type");
      return;
  }
}

void RmacProtocol::on_wf_rbt_expiry() {
  assert(state_ == State::kWfRbt);
  wait_timer_ = kInvalidEvent;
  // Step 4 (§3.3.2): the sender needs any RBT during [MRTS end, +2tau+lambda];
  // it does not distinguish how many receivers raised it.
  const bool detected = rbt_.detected_in_window(id(), anchor_, scheduler_.now());
  if (!detected) {
    fail_attempt("C15-no-rbt", DropReason::kNoRbt);
    return;
  }
  set_state(State::kTxRdata, "C18");
  FramePtr frame = make_reliable_data(id(), active_->remaining, active_->req.packet,
                                      active_->req.packet->seq);
  tx_start_ = scheduler_.now();
  count_frame_tx(*frame);
  radio_.transmit(std::move(frame));  // protected by the receivers' RBTs; never aborted
}

void RmacProtocol::on_abt_slot_boundary() {
  assert(state_ == State::kWfAbt);
  const SimTime labt = abt_.params().tone_slot();
  const SimTime from = anchor_ + static_cast<std::int64_t>(abt_slot_) * labt;
  abt_seen_[abt_slot_] = abt_.detected_in_window(id(), from, scheduler_.now());
  stats_.abt_check_time += labt;
  ++abt_slot_;
  if (abt_slot_ < active_->remaining.size()) {
    wait_timer_ = scheduler_.schedule_in(labt, [this] { on_abt_slot_boundary(); });
    return;
  }
  wait_timer_ = kInvalidEvent;
  conclude_reliable_attempt();
}

void RmacProtocol::conclude_reliable_attempt() {
  std::vector<NodeId> failed;
  for (std::size_t i = 0; i < active_->remaining.size(); ++i) {
    if (!abt_seen_[i]) failed.push_back(active_->remaining[i]);
  }
  if (failed.empty()) {
    finish_active(/*success=*/true);
    return;
  }
  // Mutation: a broken rebuild retransmits to the full set, spamming
  // receivers that already acknowledged.
  if (!params_.faults.rebuild_keep_acked) active_->remaining = std::move(failed);
  fail_attempt("missing-abt", DropReason::kAbtSilence);
}

void RmacProtocol::fail_attempt(const char* why, DropReason cause) {
  assert(active_.has_value());
  active_->last_fail = cause;
  if (active_->attempts > params_.mac.retry_limit) {
    // Retry limit exhausted: drop the frame (note (1), §3.3.2).
    finish_active(/*success=*/false);
    return;
  }
  ++stats_.retransmissions;
  if (cw_ < params_.mac.cw_max) ++stats_.cw_escalations;
  cw_ = std::min(2 * cw_ + 1, params_.mac.cw_max);
  backoff_.draw(cw_);
  backoff_.ensure_running(cw_);
  set_state(State::kBackoff, why);
}

void RmacProtocol::finish_active(bool success) {
  assert(active_.has_value());
  ReliableSendResult result;
  result.packet = active_->req.packet;
  result.success = success;
  result.transmissions = active_->attempts;
  result.receivers = active_->req.receivers;
  if (success) {
    ++stats_.reliable_delivered;
  } else {
    ++stats_.reliable_dropped;
    result.failed_receivers = active_->remaining;
    result.drop_reason = active_->last_fail == DropReason::kNone ? DropReason::kRetryExhausted
                                                                 : active_->last_fail;
  }
  const bool swallow = !success && params_.faults.swallow_drop_report;
  active_.reset();
  cw_ = params_.mac.cw_min;
  if (!swallow) report_done(result);
  post_tx_backoff();
}

void RmacProtocol::post_tx_backoff() {
  // Backoff condition (3), §3.3.1: successive transmissions are always
  // separated by a backoff procedure, giving other nodes a chance.
  backoff_.draw(cw_);
  backoff_.ensure_running(cw_);
  set_state(State::kBackoff, "C2/C13-post-tx");
}

// ---------------------------------------------------------------------------
// Receiver side

void RmacProtocol::on_frame_received(const FramePtr& frame) {
  count_frame_rx(*frame);
  switch (frame->type) {
    case FrameType::kMrts:
      handle_mrts(frame);
      return;
    case FrameType::kReliableData:
      handle_reliable_data(frame);
      return;
    case FrameType::kUnreliableData:
      if (frame->addressed_to(id())) deliver_up(*frame);
      return;
    default:
      return;  // foreign protocol frames are noise to RMAC
  }
}

void RmacProtocol::handle_mrts(const FramePtr& frame) {
  // Appendix A: MRTS reception is only acted upon in IDLE/BACKOFF.
  if (state_ != State::kIdle && state_ != State::kBackoff) return;
  const auto index = frame->receiver_index(id());
  if (!index.has_value()) return;  // overheard, not for us
  stats_.control_rx_time += rbt_.params().frame_airtime(frame->wire_bytes());
  rx_.emplace(RxRole{frame->transmitter, *index, false, kInvalidEvent});
  set_state(State::kWfRdata, "C3");
  rbt_.set_tone(id(), true);
  // T_wf_rdata is 2*tau + lambda in the paper, but the data frame's first
  // bit lands at the receiver exactly 2*tau + lambda after its MRTS
  // reception (the sender waits the same period, and the propagation terms
  // cancel), so the timer needs turnaround slack or it would expire in a
  // dead heat with the arriving frame.
  rx_->timer = scheduler_.schedule_in(rbt_.params().tone_slot() + rbt_.params().max_propagation,
                                      [this] { on_wf_rdata_expiry(); });
}

void RmacProtocol::on_carrier_changed(bool busy) {
  if (!rx_.has_value() || state_ != State::kWfRdata) return;
  if (busy && !rx_->data_arriving) {
    // First bit of the data frame arrived before T_wf_rdata expired: cancel
    // the timer; the RBT continues to the end of the reception (step 5).
    rx_->data_arriving = true;
    if (rx_->timer != kInvalidEvent) {
      scheduler_.cancel(rx_->timer);
      rx_->timer = kInvalidEvent;
    }
    // Mutation: drop RBT protection as soon as the data starts instead of
    // holding it to the end of the reception (step 5).
    if (params_.faults.rbt_release_at_data_start) rbt_.set_tone(id(), false);
  } else if (!busy && rx_->data_arriving) {
    // Reception over without an intact data frame for us (collision, BER,
    // or a foreign frame): drop the role, no ABT.
    end_rx_role(/*got_data=*/false);
  }
}

void RmacProtocol::handle_reliable_data(const FramePtr& frame) {
  // Deliver every intact reliable data frame that lists us — even if we
  // missed the MRTS (no ABT in that case); see DESIGN.md §6.
  if (frame->receiver_index(id()).has_value()) deliver_up(*frame);
  if (rx_.has_value() && state_ == State::kWfRdata && frame->transmitter == rx_->sender) {
    schedule_abt(rx_->index);
    end_rx_role(/*got_data=*/true);
  }
}

void RmacProtocol::schedule_abt(std::size_t index) {
  const SimTime labt = abt_.params().tone_slot();
  // Mutation knob shifts the pulse into the wrong slot (clamped at 0).
  const std::int64_t slot =
      std::max<std::int64_t>(0, static_cast<std::int64_t>(index) + params_.faults.abt_slot_offset);
  const SimTime on_at = slot * labt;
  scheduler_.schedule_in(on_at, [this] { abt_.set_tone(id(), true); });
  scheduler_.schedule_in(on_at + labt, [this] { abt_.set_tone(id(), false); });
}

void RmacProtocol::end_rx_role(bool got_data) {
  (void)got_data;
  if (rx_->timer != kInvalidEvent) scheduler_.cancel(rx_->timer);
  rx_.reset();
  rbt_.set_tone(id(), false);
  set_state(State::kIdle, "C4/C7");
  maybe_start();
}

void RmacProtocol::on_wf_rdata_expiry() {
  assert(rx_.has_value() && state_ == State::kWfRdata);
  rx_->timer = kInvalidEvent;
  end_rx_role(/*got_data=*/false);
}

void RmacProtocol::for_each_pending_reliable(const PendingReliableFn& fn) const {
  if (active_.has_value() && active_->req.reliable && active_->req.packet != nullptr) {
    fn(active_->req.packet, active_->req.receivers);
  }
  MacProtocol::for_each_pending_reliable(fn);
}

}  // namespace rmacsim
