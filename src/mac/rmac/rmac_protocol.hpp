// RMAC: the paper's reliable multicast MAC protocol (§3).
//
// Sender side of a Reliable Send (Fig. 4):
//   backoff -> TX_MRTS -> WF_RBT -> TX_RDATA -> WF_ABT -> done / retransmit
// with the MRTS aborted if an RBT is detected during its transmission, and
// the retransmitted MRTS containing exactly the receivers whose ABT slot
// stayed silent.  Receiver side:
//   MRTS listing me -> RBT on, WF_RDATA -> data -> RBT off, ABT in slot i.
// The Unreliable Send transmits once and aborts on RBT detection.
//
// States and transitions implement Appendix A / Table 1 (conditions C1-C19);
// state changes are emitted on the tracer (category mac.state) so tests can
// assert the exact transition sequences.
#pragma once

#include <optional>
#include <vector>

#include "mac/backoff.hpp"
#include "mac/mac_protocol.hpp"
#include "phy/medium.hpp"
#include "phy/tone_channel.hpp"
#include "sim/trace.hpp"

namespace rmacsim {

class RmacProtocol final : public MacProtocol {
public:
  enum class State : std::uint8_t {
    kIdle,
    kBackoff,
    kWfRbt,
    kWfRdata,
    kWfAbt,
    kTxMrts,
    kTxRdata,
    kTxUnrdata,
  };

  // Test-only mutation knobs (tests/audit_test.cpp): each one deliberately
  // breaks a single protocol invariant so the auditor's detection of that
  // invariant can be validated.  All default off; nothing outside the
  // mutation tests may set them.
  struct Faults {
    int abt_slot_offset{0};                 // receiver pulses ABT in slot i+offset
    bool rebuild_keep_acked{false};         // retransmitted MRTS keeps ACKed receivers
    bool rbt_release_at_data_start{false};  // RBT dropped at first data bit, not data end
    bool ignore_rbt_during_tx{false};       // never abort MRTS/UDATA on sensed RBT
    // A drop path that forgets to report: failed invocations vanish without
    // a mac_reliable_done.  Exists to prove the loss ledger's conservation
    // check fires on exactly this class of bug (tests/loss_ledger_test.cpp).
    bool swallow_drop_report{false};
  };

  struct Params {
    MacParams mac{};
    // Ablation switch (bench/ablation_rbt): when false, the RBT is still
    // used as the sender/receiver handshake but loses its protective roles —
    // nodes neither defer to it in backoff nor abort transmissions on it.
    bool rbt_protection{true};
    Faults faults{};
  };

  RmacProtocol(Scheduler& scheduler, Radio& radio, ToneChannel& rbt, ToneChannel& abt,
               Rng rng, Params params, Tracer* tracer = nullptr);
  ~RmacProtocol() override;

  // --- MacProtocol --------------------------------------------------------
  void reliable_send(AppPacketPtr packet, std::vector<NodeId> receivers) override;
  void unreliable_send(AppPacketPtr packet, NodeId dest) override;
  [[nodiscard]] NodeId id() const noexcept override { return radio_.id(); }
  [[nodiscard]] std::string name() const override { return "RMAC"; }

  // --- RadioListener ------------------------------------------------------
  void on_frame_received(const FramePtr& frame) override;
  void on_carrier_changed(bool busy) override;
  void on_transmit_complete(const FramePtr& frame, bool aborted) override;

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] unsigned contention_window() const noexcept { return cw_; }
  [[nodiscard]] std::size_t queued() const noexcept { return queue_.size(); }

  [[nodiscard]] static const char* to_string(State s) noexcept;

  void for_each_pending_reliable(const PendingReliableFn& fn) const override;

private:
  // One Reliable/Unreliable Send invocation in progress.
  struct Active {
    TxRequest req;
    std::vector<NodeId> remaining;  // receivers still to acknowledge
    unsigned attempts{0};           // MRTS transmissions so far (incl. aborted)
    DropReason last_fail{DropReason::kNone};  // cause of the latest failed attempt
  };
  // Receiver role established by an MRTS that listed this node.
  struct RxRole {
    NodeId sender;
    std::size_t index;       // i: position in the MRTS receiver sequence
    bool data_arriving{false};
    EventId timer{kInvalidEvent};  // T_wf_rdata
  };

  void set_state(State next, const char* why);
  void enqueue(TxRequest req);
  void maybe_start();
  void on_backoff_fire();
  [[nodiscard]] bool channels_idle() const;

  void begin_transmission();
  void transmit_mrts();
  void watch_rbt_during_tx();
  void on_rbt_edge();
  void on_wf_rbt_expiry();
  void on_abt_slot_boundary();
  void conclude_reliable_attempt();
  void fail_attempt(const char* why, DropReason cause);
  void finish_active(bool success);
  void post_tx_backoff();

  void handle_mrts(const FramePtr& frame);
  void handle_reliable_data(const FramePtr& frame);
  void end_rx_role(bool got_data);
  void on_wf_rdata_expiry();
  void schedule_abt(std::size_t index);

  Scheduler& scheduler_;
  Radio& radio_;
  ToneChannel& rbt_;
  ToneChannel& abt_;
  Rng rng_;
  Params params_;
  Tracer* tracer_;

  State state_{State::kIdle};
  BackoffEngine backoff_;
  unsigned cw_;

  std::optional<Active> active_;
  std::optional<RxRole> rx_;

  // Sender-side timing anchors.
  SimTime tx_start_{SimTime::zero()};
  SimTime anchor_{SimTime::zero()};  // end of MRTS (WF_RBT) / end of data (WF_ABT)
  EventId wait_timer_{kInvalidEvent};
  std::size_t abt_slot_{0};
  std::vector<bool> abt_seen_;
};

}  // namespace rmacsim
