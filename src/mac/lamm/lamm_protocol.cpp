#include "mac/lamm/lamm_protocol.hpp"

#include "phy/frame_pool.hpp"

#include <cassert>
#include <memory>
#include <utility>

namespace rmacsim {

namespace {
FramePtr make_grts(NodeId tx, std::vector<NodeId> receivers, std::uint32_t seq,
                   SimTime duration, JourneyId journey) {
  Frame f;
  f.type = FrameType::kGrts;
  f.transmitter = tx;
  f.dest = kInvalidNode;
  f.receivers = std::move(receivers);
  f.seq = seq;
  f.duration = duration;
  f.journey = journey;
  return make_frame(std::move(f));
}
}  // namespace

LammProtocol::LammProtocol(Scheduler& scheduler, Radio& radio, Rng rng, MacParams params,
                           Tracer* tracer)
    : Dot11Base{scheduler, radio, rng, params, tracer} {}

void LammProtocol::reliable_send(AppPacketPtr packet, std::vector<NodeId> receivers) {
  assert(packet != nullptr);
  if (receivers.empty()) {
    ReliableSendResult ok;
    ok.packet = std::move(packet);
    ok.success = true;
    report_done(std::move(ok));
    return;
  }
  if (!queue_admit(params_)) {
    ReliableSendResult r;
    r.packet = std::move(packet);
    r.failed_receivers = std::move(receivers);
    r.receivers = r.failed_receivers;
    r.drop_reason = DropReason::kQueueOverflow;
    report_done(r);
    return;
  }
  TxRequest req;
  req.reliable = true;
  req.packet = std::move(packet);
  req.receivers = std::move(receivers);
  ++stats_.reliable_requests;
  push_request(std::move(req));
  maybe_start();
}

void LammProtocol::unreliable_send(AppPacketPtr packet, NodeId dest) {
  assert(packet != nullptr);
  if (!queue_admit(params_)) return;
  TxRequest req;
  req.reliable = false;
  req.packet = std::move(packet);
  req.dest = dest;
  ++stats_.unreliable_requests;
  push_request(std::move(req));
  maybe_start();
}

void LammProtocol::maybe_start() {
  if (phase_ != Phase::kIdle && phase_ != Phase::kContend) return;
  if (!active_.has_value()) {
    if (queue_.empty()) return;
    Active a;
    a.req = std::move(queue_.front());
    queue_.pop_front();
    a.remaining = a.req.receivers;
    active_.emplace(std::move(a));
  }
  set_phase(Phase::kContend);
  contend();
}

void LammProtocol::on_contention_won() {
  if (!active_.has_value()) {
    if (queue_.empty()) {
      set_phase(Phase::kIdle);
      return;
    }
    Active a;
    a.req = std::move(queue_.front());
    queue_.pop_front();
    a.remaining = a.req.receivers;
    active_.emplace(std::move(a));
  }
  if (!active_->req.reliable) {
    if (!transmit_now(make_data80211(id(), active_->req.dest, {}, active_->req.packet,
                                     active_->req.packet->seq, SimTime::zero()))) {
      set_phase(Phase::kContend);
      post_tx_backoff();
    }
    return;
  }
  begin_round();
}

void LammProtocol::begin_round() {
  Active& a = *active_;
  ++a.rounds;
  if (a.rounds > 1) ++stats_.retransmissions;
  a.responded.clear();
  a.acked.clear();
  const auto n = static_cast<std::int64_t>(a.remaining.size());
  // NAV from the GRTS covers the CTS window, DATA, and the ACK window.
  const SimTime nav =
      n * cts_slot() + phy_.sifs +
      airtime_bytes(kDot11DataFramingBytes + a.req.packet->payload_bytes) + phy_.sifs +
      n * ack_slot() + 8 * phy_.max_propagation;
  FramePtr grts = make_grts(id(), a.remaining, a.req.packet->seq, nav,
                            a.req.packet->journey);
  stats_.control_tx_time += airtime(*grts);
  set_phase(Phase::kCtsWindow);
  if (!transmit_now(std::move(grts))) round_failed();
}

void LammProtocol::on_transmit_complete(const FramePtr& frame, bool /*aborted*/) {
  if (!active_.has_value()) return;
  switch (frame->type) {
    case FrameType::kGrts: {
      // Listen through all n self-scheduled CTS slots.
      const auto n = static_cast<std::int64_t>(active_->remaining.size());
      window_timer_ = scheduler_.schedule_in(
          n * cts_slot() + 2 * phy_.max_propagation + phy_.slot,
          [this] { on_cts_window_end(); });
      return;
    }
    case FrameType::kData80211:
      if (!active_->req.reliable) {
        active_.reset();
        set_phase(Phase::kIdle);
        post_tx_backoff();
        maybe_start();
        return;
      }
      stats_.reliable_data_tx_time += airtime(*frame);
      set_phase(Phase::kAckWindow);
      {
        const auto n = static_cast<std::int64_t>(active_->remaining.size());
        window_timer_ = scheduler_.schedule_in(
            n * ack_slot() + 2 * phy_.max_propagation + phy_.slot,
            [this] { on_ack_window_end(); });
      }
      return;
    default:
      return;
  }
}

void LammProtocol::on_cts_window_end() {
  window_timer_ = kInvalidEvent;
  if (!active_.has_value() || phase_ != Phase::kCtsWindow) return;
  Active& a = *active_;
  if (a.responded.empty()) {
    round_failed();
    return;
  }
  const auto n = static_cast<std::int64_t>(a.remaining.size());
  const SimTime nav = phy_.sifs + n * ack_slot() + 4 * phy_.max_propagation;
  if (!transmit_now(make_data80211(id(), kInvalidNode, a.remaining, a.req.packet,
                                   a.req.packet->seq, nav))) {
    round_failed();
  }
}

void LammProtocol::on_ack_window_end() {
  window_timer_ = kInvalidEvent;
  if (!active_.has_value() || phase_ != Phase::kAckWindow) return;
  Active& a = *active_;
  std::vector<NodeId> failed;
  for (NodeId r : a.remaining) {
    if (!a.acked.contains(r)) failed.push_back(r);
  }
  if (failed.empty()) {
    finish(/*success=*/true);
    return;
  }
  a.remaining = std::move(failed);
  round_failed();
}

void LammProtocol::handle_frame(const FramePtr& frame) {
  switch (frame->type) {
    case FrameType::kGrts: {
      const auto index = frame->receiver_index(id());
      if (!index.has_value()) return;
      if (phase_ != Phase::kIdle && phase_ != Phase::kContend) return;
      stats_.control_rx_time += airtime(*frame);
      // Self-scheduled CTS in slot i (location-derived order in real LAMM;
      // here the GRTS list is the shared ordering).
      const SimTime at = phy_.sifs + static_cast<std::int64_t>(*index) * cts_slot();
      FramePtr cts = make_cts(id(), frame->transmitter,
                              frame->duration - static_cast<std::int64_t>(*index + 1) *
                                                    cts_slot(),
                              /*seq=*/0, frame->journey);
      count_control_tx(*cts);
      scheduler_.schedule_in(at, [this, cts = std::move(cts)]() mutable {
        (void)transmit_now(std::move(cts));  // drop = sender counts us missing
      });
      return;
    }
    case FrameType::kCts:
      if (phase_ == Phase::kCtsWindow && active_.has_value()) {
        active_->responded.insert(frame->transmitter);
      }
      return;
    case FrameType::kData80211: {
      if (frame->duration <= SimTime::zero()) {
        deliver_up(*frame);  // one-shot unreliable data
        return;
      }
      const auto index = frame->receiver_index(id());
      if (index.has_value()) {
        if (remember_data(frame->transmitter, frame->seq)) deliver_up(*frame);
        // ACK in slot i — derivable from the DATA's list even if the GRTS
        // was missed (the location knowledge LAMM postulates).
        if (phase_ == Phase::kIdle || phase_ == Phase::kContend) {
          const SimTime at = phy_.sifs + static_cast<std::int64_t>(*index) * ack_slot();
          FramePtr ack = make_ack(id(), frame->transmitter, frame->seq, frame->journey);
          count_control_tx(*ack);
          scheduler_.schedule_in(at, [this, ack = std::move(ack)]() mutable {
            (void)transmit_now(std::move(ack));
          });
        }
      }
      return;
    }
    case FrameType::kAck:
      if (phase_ == Phase::kAckWindow && active_.has_value()) {
        active_->acked.insert(frame->transmitter);
      }
      return;
    default:
      return;
  }
}

void LammProtocol::round_failed() {
  Active& a = *active_;
  if (a.rounds > params_.retry_limit) {
    finish(/*success=*/false);
    return;
  }
  bump_cw();
  set_phase(Phase::kContend);
  backoff_.draw(cw_);
  contend();
}

void LammProtocol::finish(bool success) {
  assert(active_.has_value());
  ReliableSendResult result;
  result.packet = active_->req.packet;
  result.success = success;
  result.transmissions = active_->rounds;
  result.receivers = active_->req.receivers;
  if (success) {
    ++stats_.reliable_delivered;
  } else {
    ++stats_.reliable_dropped;
    result.failed_receivers = active_->remaining;
    result.drop_reason = DropReason::kRetryExhausted;
  }
  active_.reset();
  reset_cw();
  set_phase(Phase::kIdle);
  report_done(result);
  post_tx_backoff();
  maybe_start();
}

void LammProtocol::for_each_pending_reliable(const PendingReliableFn& fn) const {
  if (active_.has_value() && active_->req.reliable && active_->req.packet != nullptr) {
    fn(active_->req.packet, active_->req.receivers);
  }
  MacProtocol::for_each_pending_reliable(fn);
}

}  // namespace rmacsim
