// LAMM — "Location-Aware Multicast MAC" (Sun, Huang, Arora, Lai, ICPP'02),
// reconstructed from the RMAC paper's §2 description: the second protocol of
// [16], which "utilizes location information by GPS to further improve
// BMMM".
//
// The improvement it buys: with a shared notion of ordering (location), the
// sender no longer polls each receiver — one *group RTS* carries the ordered
// receiver list, receivers answer CTS in their listed slots, DATA follows,
// and receivers ACK in their listed slots with no RAK frames at all:
//
//   contention -> GRTS -> CTS_1..CTS_n (self-scheduled) -> DATA
//              -> ACK_1..ACK_n (self-scheduled)
//
// Control cost per round: (12+6n B) + n x CTS + n x ACK, roughly halving
// BMMM's 2n control pairs — still frame-based feedback, so it sits exactly
// between BMMM and RMAC's tone-based design in the overhead spectrum.
#pragma once

#include <optional>
#include <unordered_set>

#include "mac/dcf/dot11_base.hpp"

namespace rmacsim {

class LammProtocol final : public Dot11Base {
public:
  LammProtocol(Scheduler& scheduler, Radio& radio, Rng rng, MacParams params = MacParams{},
               Tracer* tracer = nullptr);

  void reliable_send(AppPacketPtr packet, std::vector<NodeId> receivers) override;
  void unreliable_send(AppPacketPtr packet, NodeId dest) override;
  [[nodiscard]] std::string name() const override { return "LAMM"; }

  void on_transmit_complete(const FramePtr& frame, bool aborted) override;

  enum class Phase : std::uint8_t { kIdle, kContend, kCtsWindow, kAckWindow };
  [[nodiscard]] Phase phase() const noexcept { return phase_; }

  void for_each_pending_reliable(const PendingReliableFn& fn) const override;

private:
  struct Active {
    TxRequest req;
    std::vector<NodeId> remaining;
    std::unordered_set<NodeId> responded;  // CTSs heard this round
    std::unordered_set<NodeId> acked;      // ACKs heard this round
    unsigned rounds{0};
  };

  void on_contention_won() override;
  void handle_frame(const FramePtr& frame) override;

  void maybe_start();
  void begin_round();
  void on_cts_window_end();
  void on_ack_window_end();
  void round_failed();
  void finish(bool success);

  // Slot pitch for the self-scheduled responses.
  [[nodiscard]] SimTime cts_slot() const { return airtime_bytes(kCtsBytes) + phy_.sifs; }
  [[nodiscard]] SimTime ack_slot() const { return airtime_bytes(kAckBytes) + phy_.sifs; }

  // FSM edges funnel through here so rmacsim_mac_state_transitions_total
  // counts every protocol the same way.
  void set_phase(Phase p) noexcept {
    if (p != phase_) ++stats_.state_transitions;
    phase_ = p;
  }

  Phase phase_{Phase::kIdle};
  std::optional<Active> active_;
  EventId window_timer_{kInvalidEvent};
};

}  // namespace rmacsim
