// MAC service interface shared by RMAC and the baseline protocols.
//
// Mirrors the paper's service model (§3.3): a Reliable Send that transmits a
// packet to an explicit list of one-hop receivers with recovery, and an
// Unreliable Send that transmits once with no recovery.  Unicast, multicast
// and broadcast are all expressed through the receiver list / destination
// address, exactly as in the paper.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "phy/frame.hpp"
#include "phy/radio.hpp"
#include "stats/metrics.hpp"

namespace rmacsim {

// Outcome of one Reliable Send invocation, reported to the upper layer.
//
// `receivers` names the invocation's full target set (RMAC's §3.4 receiver
// cap can split one reliable_send call into several invocations; each
// reports its own subset).  The loss ledger resolves each listed receiver:
// members of `failed_receivers` terminate with `drop_reason`, the rest were
// acknowledged (or believed so).
struct ReliableSendResult {
  AppPacketPtr packet;
  bool success{false};
  std::vector<NodeId> failed_receivers;  // receivers never acknowledged
  unsigned transmissions{0};             // 1 + retransmissions
  std::vector<NodeId> receivers;         // the invocation's target set
  DropReason drop_reason{DropReason::kNone};  // cause, when !success
};

// Upper-layer callbacks (network layer / application).
class MacUpper {
public:
  virtual ~MacUpper() = default;
  // An intact data frame addressed to this node arrived.
  virtual void mac_deliver(const Frame& frame) = 0;
  // A Reliable Send invocation finished (delivered or dropped).
  virtual void mac_reliable_done(const ReliableSendResult& /*result*/) {}
};

// Shared protocol parameters (values per the paper / IEEE 802.11b).
struct MacParams {
  unsigned cw_min{31};
  unsigned cw_max{1023};
  unsigned retry_limit{7};     // retransmissions allowed per frame
  unsigned max_receivers{20};  // RMAC §3.4 receiver cap per invocation
  // Transmission-queue capacity; 0 = unbounded (the paper's setting — its
  // drop accounting attributes every loss to the retry limit, §4.2.2).
  std::size_t queue_limit{0};
  // Test-only mutation knob (tests/audit_test.cpp): an 802.11-family node
  // that never updates its NAV from overheard traffic, so it contends into
  // other nodes' reservations.  Never set outside the mutation tests.
  bool fault_ignore_nav{false};
};

class MacProtocol : public RadioListener {
public:
  ~MacProtocol() override = default;

  // Transmit `packet` reliably to each node in `receivers` (unicast: one
  // entry; broadcast: the caller's one-hop neighbour list, §3.3.2).
  virtual void reliable_send(AppPacketPtr packet, std::vector<NodeId> receivers) = 0;

  // Transmit `packet` once, unacknowledged, to `dest` (a node id or
  // kBroadcastId).
  virtual void unreliable_send(AppPacketPtr packet, NodeId dest) = 0;

  [[nodiscard]] virtual NodeId id() const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  void set_upper(MacUpper* upper) noexcept { upper_ = upper; }

  [[nodiscard]] MacStats& stats() noexcept { return stats_; }
  [[nodiscard]] const MacStats& stats() const noexcept { return stats_; }

  // Pending transmission requests (observability probes; excludes any
  // request currently in service).
  [[nodiscard]] std::size_t queue_depth() const noexcept { return queue_.size(); }

  // End-of-run sweep hook for the loss ledger: visit every reliable request
  // that is still unfinished — queued here in the base, plus the in-service
  // request in each protocol's override.  Receivers visited here are
  // accounted as DropReason::kEndOfRun instead of leaking.
  using PendingReliableFn =
      std::function<void(const AppPacketPtr&, const std::vector<NodeId>&)>;
  virtual void for_each_pending_reliable(const PendingReliableFn& fn) const {
    for (const TxRequest& q : queue_) {
      if (q.reliable && q.packet != nullptr) fn(q.packet, q.receivers);
    }
  }

protected:
  // Pending transmission request (FIFO service).
  struct TxRequest {
    bool reliable{false};
    AppPacketPtr packet;
    std::vector<NodeId> receivers;  // reliable service
    NodeId dest{kBroadcastId};      // unreliable service
  };

  // Drop-tail admission control; returns false (and counts the drop) when
  // the transmission queue is at capacity.
  [[nodiscard]] bool queue_admit(const MacParams& params) {
    if (params.queue_limit == 0 || queue_.size() < params.queue_limit) return true;
    ++stats_.queue_drops;
    return false;
  }

  // All enqueues go through here so the queue high-water mark (registry
  // gauge `rmacsim_mac_queue_peak`) tracks without polling.
  void push_request(TxRequest req) {
    queue_.push_back(std::move(req));
    if (queue_.size() > stats_.queue_peak) stats_.queue_peak = queue_.size();
  }

  // Per-frame-type tx/rx counters feeding the registry's collect pass.
  void count_frame_tx(const Frame& frame) noexcept {
    ++stats_.frames_tx[static_cast<std::size_t>(frame.type)];
  }
  void count_frame_rx(const Frame& frame) noexcept {
    ++stats_.frames_rx[static_cast<std::size_t>(frame.type)];
  }

  void deliver_up(const Frame& frame) {
    if (upper_ != nullptr) upper_->mac_deliver(frame);
  }
  void report_done(const ReliableSendResult& r) {
    // Central per-reason drop accounting: one count per receiver the MAC
    // gave up on, keyed by the reason the protocol recorded (receptions —
    // the ledger's unit).  Protocols that predate the taxonomy report
    // kNone; those land in kRetryExhausted, same as the ledger's fallback.
    if (!r.success && !r.failed_receivers.empty()) {
      const DropReason reason =
          r.drop_reason == DropReason::kNone ? DropReason::kRetryExhausted : r.drop_reason;
      stats_.drops_by_reason[static_cast<std::size_t>(reason)] += r.failed_receivers.size();
    }
    if (upper_ != nullptr) upper_->mac_reliable_done(r);
  }

  MacUpper* upper_{nullptr};
  MacStats stats_;
  std::deque<TxRequest> queue_;
};

}  // namespace rmacsim
