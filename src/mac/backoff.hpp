// Slot-based backoff engine (paper §3.3.1).
//
// The node keeps a Backoff Interval (BI) in slot units.  Each slot it
// samples the channel predicate; if idle, BI decreases by one, otherwise
// the countdown is suspended with BI preserved.  When BI hits zero the
// `fire` callback runs.  Contention Window management (exponential
// increase / reset) stays with the owning protocol.
#pragma once

#include <cassert>
#include <functional>

#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace rmacsim {

class BackoffEngine {
public:
  using IdlePredicate = std::function<bool()>;
  using FireCallback = std::function<void()>;

  BackoffEngine(Scheduler& scheduler, SimTime slot, Rng rng)
      : scheduler_{scheduler}, slot_{slot}, rng_{rng} {}
  ~BackoffEngine() { stop(); }
  BackoffEngine(const BackoffEngine&) = delete;
  BackoffEngine& operator=(const BackoffEngine&) = delete;

  void set_callbacks(IdlePredicate idle, FireCallback fire) {
    idle_ = std::move(idle);
    fire_ = std::move(fire);
  }

  // Draw a fresh BI uniformly from [0, cw].  Replaces any preserved BI.
  void draw(unsigned cw) {
    bi_ = static_cast<unsigned>(rng_.uniform_int(0, static_cast<std::int64_t>(cw)));
    drawn_ = true;
  }

  // Begin (or resume) the countdown; draws from `cw` only if no BI is
  // pending from a previous suspension.
  void ensure_running(unsigned cw) {
    if (!drawn_) draw(cw);
    if (ticking_) return;
    ticking_ = true;
    // BI == 0 with an idle channel fires on the next event boundary, which
    // matches "begins frame transmission immediately".
    schedule_tick(bi_ == 0 ? SimTime::zero() : slot_);
  }

  // Stop ticking; BI is preserved (suspension) unless `clear`.
  void stop(bool clear = false) noexcept {
    if (ticking_) {
      scheduler_.cancel(tick_event_);
      ticking_ = false;
    }
    if (clear) drawn_ = false;
  }

  [[nodiscard]] bool running() const noexcept { return ticking_; }
  [[nodiscard]] bool has_pending_bi() const noexcept { return drawn_; }
  [[nodiscard]] unsigned bi() const noexcept { return bi_; }
  // True when an immediate transmission is allowed (no countdown pending).
  [[nodiscard]] bool clear_to_send() const noexcept { return !drawn_ || bi_ == 0; }

private:
  void schedule_tick(SimTime delay) {
    tick_event_ = scheduler_.schedule_in(delay, [this] { tick(); });
  }

  void tick() {
    assert(idle_ && fire_);
    if (idle_()) {
      if (bi_ > 0) --bi_;
      if (bi_ == 0) {
        ticking_ = false;
        drawn_ = false;
        fire_();
        return;
      }
    }
    schedule_tick(slot_);
  }

  Scheduler& scheduler_;
  SimTime slot_;
  Rng rng_;
  IdlePredicate idle_;
  FireCallback fire_;
  unsigned bi_{0};
  bool drawn_{false};
  bool ticking_{false};
  EventId tick_event_{kInvalidEvent};
};

}  // namespace rmacsim
