#include "mac/bmmm/bmmm_protocol.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace rmacsim {

BmmmProtocol::BmmmProtocol(Scheduler& scheduler, Radio& radio, Rng rng, MacParams params,
                           Tracer* tracer)
    : Dot11Base{scheduler, radio, rng, params, tracer} {}

void BmmmProtocol::reliable_send(AppPacketPtr packet, std::vector<NodeId> receivers) {
  assert(packet != nullptr);
  if (receivers.empty()) {
    ReliableSendResult ok;
    ok.packet = std::move(packet);
    ok.success = true;
    report_done(std::move(ok));
    return;
  }
  if (!queue_admit(params_)) {
    ReliableSendResult r;
    r.packet = std::move(packet);
    r.failed_receivers = std::move(receivers);
    r.receivers = r.failed_receivers;
    r.drop_reason = DropReason::kQueueOverflow;
    report_done(r);
    return;
  }
  TxRequest req;
  req.reliable = true;
  req.packet = std::move(packet);
  req.receivers = std::move(receivers);
  ++stats_.reliable_requests;
  push_request(std::move(req));
  maybe_start();
}

void BmmmProtocol::unreliable_send(AppPacketPtr packet, NodeId dest) {
  assert(packet != nullptr);
  if (!queue_admit(params_)) return;
  TxRequest req;
  req.reliable = false;
  req.packet = std::move(packet);
  req.dest = dest;
  ++stats_.unreliable_requests;
  push_request(std::move(req));
  maybe_start();
}

void BmmmProtocol::maybe_start() {
  if (phase_ != Phase::kIdle && phase_ != Phase::kContend) return;
  if (!active_.has_value()) {
    if (queue_.empty()) return;
    Active a;
    a.req = std::move(queue_.front());
    queue_.pop_front();
    a.remaining = a.req.receivers;
    active_.emplace(std::move(a));
  }
  set_phase(Phase::kContend);
  contend();
}

void BmmmProtocol::on_contention_won() {
  if (!active_.has_value()) {
    if (queue_.empty()) {
      set_phase(Phase::kIdle);
      return;
    }
    Active a;
    a.req = std::move(queue_.front());
    queue_.pop_front();
    a.remaining = a.req.receivers;
    active_.emplace(std::move(a));
  }
  if (!active_->req.reliable) {
    // Unreliable service: plain 802.11 broadcast, one shot.
    if (!transmit_now(make_data80211(id(), active_->req.dest, {}, active_->req.packet,
                                     active_->req.packet->seq, SimTime::zero()))) {
      set_phase(Phase::kContend);
      post_tx_backoff();
    }
    return;
  }
  begin_round();
}

void BmmmProtocol::begin_round() {
  Active& a = *active_;
  ++a.rounds;
  if (a.rounds > 1) ++stats_.retransmissions;
  a.responded.clear();
  a.acked.clear();
  a.index = 0;
  set_phase(Phase::kRtsCts);
  send_rts(0);
}

SimTime BmmmProtocol::remaining_batch_time(std::size_t rts_left, bool data_left,
                                           std::size_t rak_left) const {
  const std::size_t payload = active_->req.packet->payload_bytes;
  SimTime t = SimTime::zero();
  const SimTime pair_rts = phy_.sifs + airtime_bytes(kCtsBytes) + phy_.sifs;
  const SimTime pair_rak = phy_.sifs + airtime_bytes(kAckBytes) + phy_.sifs;
  t += static_cast<std::int64_t>(rts_left) * (airtime_bytes(kRtsBytes) + pair_rts);
  // The first pending pair's RTS/RAK airtime is excluded by callers passing
  // counts *after* the frame being sent; add DATA and the RAK tail.
  if (data_left) t += airtime_bytes(kDot11DataFramingBytes + payload) + phy_.sifs;
  t += static_cast<std::int64_t>(rak_left) * (airtime_bytes(kRakBytes) + pair_rak);
  return t + 8 * phy_.max_propagation;
}

void BmmmProtocol::send_rts(std::size_t index) {
  Active& a = *active_;
  a.index = index;
  const NodeId dest = a.remaining[index];
  const SimTime nav = remaining_batch_time(a.remaining.size() - index - 1, true,
                                           a.remaining.size()) +
                      phy_.sifs + airtime_bytes(kCtsBytes);
  FramePtr rts = make_rts(id(), dest, nav, a.req.packet->journey);
  count_control_tx(*rts);
  if (!transmit_now(std::move(rts))) round_failed();
}

void BmmmProtocol::on_transmit_complete(const FramePtr& frame, bool /*aborted*/) {
  if (!active_.has_value()) return;
  switch (frame->type) {
    case FrameType::kRts:
      timeout_ = scheduler_.schedule_in(
          phy_.sifs + airtime_bytes(kCtsBytes) + 2 * phy_.max_propagation + phy_.slot,
          [this] { on_cts_timeout(); });
      return;
    case FrameType::kData80211:
      if (!active_->req.reliable) {
        // Unreliable broadcast finished.
        active_.reset();
        set_phase(Phase::kIdle);
        post_tx_backoff();
        maybe_start();
        return;
      }
      stats_.reliable_data_tx_time += airtime(*frame);
      set_phase(Phase::kRakAck);
      active_->index = 0;
      scheduler_.schedule_in(phy_.sifs, [this] { send_rak(0); });
      return;
    case FrameType::kRak:
      timeout_ = scheduler_.schedule_in(
          phy_.sifs + airtime_bytes(kAckBytes) + 2 * phy_.max_propagation + phy_.slot,
          [this] { on_ack_timeout(); });
      return;
    default:
      return;
  }
}

void BmmmProtocol::handle_frame(const FramePtr& frame) {
  switch (frame->type) {
    case FrameType::kRts: {
      // Unlike plain DCF, a BMMM receiver answers an RTS addressed to it even
      // with a set NAV: within a batch, the NAV was raised by earlier frames
      // of the *same* exchange (the preceding CTSs cover the whole batch), so
      // gating on it would silence every receiver after the first.  A node
      // mid-batch of its own, however, stays with its own exchange.
      if (phase_ != Phase::kIdle && phase_ != Phase::kContend) return;
      FramePtr cts = make_cts(id(), frame->transmitter,
                              frame->duration - phy_.sifs - airtime_bytes(kCtsBytes),
                              /*seq=*/0, frame->journey);
      count_control_tx(*cts);
      respond_after_sifs(std::move(cts));
      return;
    }
    case FrameType::kCts:
      if (phase_ == Phase::kRtsCts && active_.has_value() &&
          frame->transmitter == active_->remaining[active_->index]) {
        scheduler_.cancel(timeout_);
        timeout_ = kInvalidEvent;
        active_->responded.insert(frame->transmitter);
        scheduler_.schedule_in(phy_.sifs, [this, next = active_->index + 1] {
          if (active_.has_value() && phase_ == Phase::kRtsCts) {
            if (next < active_->remaining.size()) {
              send_rts(next);
            } else {
              after_rts_phase();
            }
          }
        });
      }
      return;
    case FrameType::kData80211: {
      // Dedup applies only to data frames that belong to a recovery exchange
      // (duration > 0: they reserve the medium for their ACK, and can be
      // retransmitted).  One-shot data — hellos and 802.11-style multicast —
      // shares the transmitter's seq space with reliable traffic and must
      // never be swallowed by the duplicate filter.
      if (frame->duration <= SimTime::zero()) {
        deliver_up(*frame);
        return;
      }
      if (remember_data(frame->transmitter, frame->seq)) deliver_up(*frame);
      if (frame->dest == id() && (phase_ == Phase::kIdle || phase_ == Phase::kContend)) {
        FramePtr ack = make_ack(id(), frame->transmitter, frame->seq, frame->journey);
        count_control_tx(*ack);
        respond_after_sifs(std::move(ack));
      }
      return;
    }
    case FrameType::kRak: {
      // Request-for-ACK: acknowledge iff we hold the referenced data frame
      // and are not mid-batch ourselves.
      if (phase_ != Phase::kIdle && phase_ != Phase::kContend) return;
      if (have_data(frame->transmitter, frame->seq)) {
        FramePtr ack = make_ack(id(), frame->transmitter, frame->seq, frame->journey);
        count_control_tx(*ack);
        respond_after_sifs(std::move(ack));
      }
      return;
    }
    case FrameType::kAck:
      if (phase_ == Phase::kRakAck && active_.has_value() &&
          frame->transmitter == active_->remaining[active_->index]) {
        scheduler_.cancel(timeout_);
        timeout_ = kInvalidEvent;
        active_->acked.insert(frame->transmitter);
        scheduler_.schedule_in(phy_.sifs, [this, next = active_->index + 1] {
          if (active_.has_value() && phase_ == Phase::kRakAck) {
            if (next < active_->remaining.size()) {
              send_rak(next);
            } else {
              conclude_round();
            }
          }
        });
      }
      return;
    default:
      return;
  }
}

void BmmmProtocol::on_cts_timeout() {
  timeout_ = kInvalidEvent;
  if (!active_.has_value() || phase_ != Phase::kRtsCts) return;
  const std::size_t next = active_->index + 1;
  if (next < active_->remaining.size()) {
    send_rts(next);
  } else {
    after_rts_phase();
  }
}

void BmmmProtocol::after_rts_phase() {
  Active& a = *active_;
  if (a.responded.empty()) {
    // Nobody reserved the channel: round failed before the data frame.
    round_failed();
    return;
  }
  set_phase(Phase::kData);
  const SimTime nav = remaining_batch_time(0, false, a.remaining.size());
  if (!transmit_now(make_data80211(id(), kInvalidNode, a.remaining, a.req.packet,
                                   a.req.packet->seq, nav))) {
    round_failed();
  }
}

void BmmmProtocol::send_rak(std::size_t index) {
  Active& a = *active_;
  a.index = index;
  const SimTime nav = remaining_batch_time(0, false, a.remaining.size() - index - 1) +
                      phy_.sifs + airtime_bytes(kAckBytes);
  FramePtr rak = make_rak(id(), a.remaining[index], a.req.packet->seq, nav,
                          a.req.packet->journey);
  count_control_tx(*rak);
  if (!transmit_now(std::move(rak))) round_failed();
}

void BmmmProtocol::on_ack_timeout() {
  timeout_ = kInvalidEvent;
  if (!active_.has_value() || phase_ != Phase::kRakAck) return;
  const std::size_t next = active_->index + 1;
  if (next < active_->remaining.size()) {
    send_rak(next);
  } else {
    conclude_round();
  }
}

void BmmmProtocol::conclude_round() {
  Active& a = *active_;
  std::vector<NodeId> failed;
  for (NodeId r : a.remaining) {
    if (!a.acked.contains(r)) failed.push_back(r);
  }
  if (failed.empty()) {
    finish(/*success=*/true);
    return;
  }
  a.remaining = std::move(failed);
  round_failed();
}

void BmmmProtocol::round_failed() {
  Active& a = *active_;
  if (a.rounds > params_.retry_limit) {
    finish(/*success=*/false);
    return;
  }
  bump_cw();
  set_phase(Phase::kContend);
  backoff_.draw(cw_);
  contend();
}

void BmmmProtocol::finish(bool success) {
  assert(active_.has_value());
  ReliableSendResult result;
  result.packet = active_->req.packet;
  result.success = success;
  result.transmissions = active_->rounds;
  result.receivers = active_->req.receivers;
  if (success) {
    ++stats_.reliable_delivered;
  } else {
    ++stats_.reliable_dropped;
    result.failed_receivers = active_->remaining;
    result.drop_reason = DropReason::kRetryExhausted;
  }
  active_.reset();
  reset_cw();
  set_phase(Phase::kIdle);
  report_done(result);
  post_tx_backoff();
  maybe_start();
}

void BmmmProtocol::for_each_pending_reliable(const PendingReliableFn& fn) const {
  if (active_.has_value() && active_->req.reliable && active_->req.packet != nullptr) {
    fn(active_->req.packet, active_->req.receivers);
  }
  MacProtocol::for_each_pending_reliable(fn);
}

}  // namespace rmacsim
