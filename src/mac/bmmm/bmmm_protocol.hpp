// BMMM — Batch Mode Multicast MAC (Sun et al., ICPP 2002), the paper's
// comparison baseline (Fig. 1 (b)).
//
// One reliable multicast round to n receivers:
//   contention, RTS_1/CTS_1 ... RTS_n/CTS_n, DATA, RAK_1/ACK_1 ... RAK_n/ACK_n
// with SIFS between consecutive frames.  Receivers that fail to CTS or ACK
// are carried into the next round (a fresh contention phase), up to the
// retry limit.  The 2n control-frame pairs are what gives BMMM its 632n us
// overhead (§2) — reproduced by bench/control_overhead.
#pragma once

#include <optional>
#include <unordered_set>

#include "mac/dcf/dot11_base.hpp"

namespace rmacsim {

class BmmmProtocol final : public Dot11Base {
public:
  BmmmProtocol(Scheduler& scheduler, Radio& radio, Rng rng, MacParams params = MacParams{},
               Tracer* tracer = nullptr);

  void reliable_send(AppPacketPtr packet, std::vector<NodeId> receivers) override;
  void unreliable_send(AppPacketPtr packet, NodeId dest) override;
  [[nodiscard]] std::string name() const override { return "BMMM"; }

  void on_transmit_complete(const FramePtr& frame, bool aborted) override;

  enum class Phase : std::uint8_t { kIdle, kContend, kRtsCts, kData, kRakAck };
  [[nodiscard]] Phase phase() const noexcept { return phase_; }

  void for_each_pending_reliable(const PendingReliableFn& fn) const override;

private:
  struct Active {
    TxRequest req;
    std::vector<NodeId> remaining;          // receivers not yet ACKed (across rounds)
    std::unordered_set<NodeId> responded;   // CTS heard this round
    std::unordered_set<NodeId> acked;       // ACK heard this round
    std::size_t index{0};                   // position within the RTS or RAK phase
    unsigned rounds{0};
  };

  void on_contention_won() override;
  void handle_frame(const FramePtr& frame) override;

  void maybe_start();
  void begin_round();
  void send_rts(std::size_t index);
  void on_cts_timeout();
  void after_rts_phase();
  void send_rak(std::size_t index);
  void on_ack_timeout();
  void conclude_round();
  void round_failed();
  void finish(bool success);

  // Conservative NAV claim covering the remainder of the batch from the end
  // of the frame about to be sent.
  [[nodiscard]] SimTime remaining_batch_time(std::size_t rts_left, bool data_left,
                                             std::size_t rak_left) const;

  // FSM edges funnel through here so rmacsim_mac_state_transitions_total
  // counts every protocol the same way.
  void set_phase(Phase p) noexcept {
    if (p != phase_) ++stats_.state_transitions;
    phase_ = p;
  }

  Phase phase_{Phase::kIdle};
  std::optional<Active> active_;
  EventId timeout_{kInvalidEvent};
};

}  // namespace rmacsim
