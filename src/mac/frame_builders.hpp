// Convenience constructors for the MAC frame types.
//
// Data builders inherit the flight-recorder JourneyId from their AppPacket;
// control builders take it as a trailing parameter (defaulted to invalid) so
// each protocol tags the frames of an exchange with the packet they serve.
#pragma once

#include <vector>

#include "phy/frame.hpp"
#include "sim/ids.hpp"

namespace rmacsim {

[[nodiscard]] FramePtr make_mrts(NodeId transmitter, std::vector<NodeId> receivers,
                                 std::uint32_t seq, JourneyId journey = kInvalidJourney);
[[nodiscard]] FramePtr make_reliable_data(NodeId transmitter, std::vector<NodeId> receivers,
                                          AppPacketPtr packet, std::uint32_t seq);
[[nodiscard]] FramePtr make_unreliable_data(NodeId transmitter, NodeId dest, AppPacketPtr packet,
                                            std::uint32_t seq);
[[nodiscard]] FramePtr make_rts(NodeId transmitter, NodeId dest, SimTime duration,
                                JourneyId journey = kInvalidJourney);
[[nodiscard]] FramePtr make_cts(NodeId transmitter, NodeId dest, SimTime duration,
                                std::uint32_t seq = 0, JourneyId journey = kInvalidJourney);
[[nodiscard]] FramePtr make_data80211(NodeId transmitter, NodeId dest,
                                      std::vector<NodeId> group, AppPacketPtr packet,
                                      std::uint32_t seq, SimTime duration);
[[nodiscard]] FramePtr make_ack(NodeId transmitter, NodeId dest, std::uint32_t seq = 0,
                                JourneyId journey = kInvalidJourney);
[[nodiscard]] FramePtr make_rak(NodeId transmitter, NodeId dest, std::uint32_t seq,
                                SimTime duration, JourneyId journey = kInvalidJourney);

}  // namespace rmacsim
