// BMW — Broadcast Medium Window (Tang & Gerla, MILCOM 2001), Fig. 1 (a).
//
// Reliable broadcast realised as one RTS/CTS/DATA/ACK unicast per receiver,
// with every other receiver overhearing the data frame.  The CTS carries the
// sequence number the receiver still needs; a receiver that already holds
// the frame (by overhearing) signals "caught up" and the sender skips its
// data transmission.  Each per-receiver exchange is preceded by its own
// contention phase — the cost the paper's Fig. 1 highlights and
// bench/ablation_bmw_bmmm quantifies.
#pragma once

#include <optional>
#include <unordered_map>

#include "mac/dcf/dot11_base.hpp"

namespace rmacsim {

class BmwProtocol final : public Dot11Base {
public:
  BmwProtocol(Scheduler& scheduler, Radio& radio, Rng rng, MacParams params = MacParams{},
              Tracer* tracer = nullptr);

  void reliable_send(AppPacketPtr packet, std::vector<NodeId> receivers) override;
  void unreliable_send(AppPacketPtr packet, NodeId dest) override;
  [[nodiscard]] std::string name() const override { return "BMW"; }

  void on_transmit_complete(const FramePtr& frame, bool aborted) override;

  // Number of contention phases entered for reliable sends (Fig. 1 metric).
  [[nodiscard]] std::uint64_t contention_phases() const noexcept { return contention_phases_; }

  void for_each_pending_reliable(const PendingReliableFn& fn) const override;

private:
  struct Active {
    TxRequest req;
    std::vector<NodeId> pending;                    // receivers not yet confirmed
    std::unordered_map<NodeId, unsigned> attempts;  // per-receiver exchange attempts
    std::vector<NodeId> failed;
    std::size_t rr{0};  // round-robin cursor into pending
  };

  void on_contention_won() override;
  void handle_frame(const FramePtr& frame) override;

  void maybe_start();
  void on_cts_timeout();
  void on_ack_timeout();
  void receiver_confirmed(NodeId r);
  void receiver_attempt_failed(NodeId r);
  void next_receiver();
  void finish();

  enum class Step : std::uint8_t { kIdle, kContend, kWfCts, kWfAck };

  // FSM edges funnel through here so rmacsim_mac_state_transitions_total
  // counts every protocol the same way.
  void set_step(Step s) noexcept {
    if (s != step_) ++stats_.state_transitions;
    step_ = s;
  }

  Step step_{Step::kIdle};
  std::optional<Active> active_;
  NodeId current_receiver_{kInvalidNode};
  EventId timeout_{kInvalidEvent};
  std::uint64_t contention_phases_{0};
};

}  // namespace rmacsim
