#include "mac/bmw/bmw_protocol.hpp"

#include "phy/frame_pool.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

namespace rmacsim {

namespace {
// BMW's RTS/CTS carry a sequence number (the receiver's expected frame); the
// generic builders do not, so build the frames directly.
FramePtr bmw_rts(NodeId tx, NodeId dest, std::uint32_t seq, SimTime duration,
                 JourneyId journey) {
  Frame f;
  f.type = FrameType::kRts;
  f.transmitter = tx;
  f.dest = dest;
  f.seq = seq;
  f.duration = duration;
  f.journey = journey;
  return make_frame(std::move(f));
}
FramePtr bmw_cts(NodeId tx, NodeId dest, std::uint32_t seq, SimTime duration,
                 JourneyId journey) {
  Frame f;
  f.type = FrameType::kCts;
  f.transmitter = tx;
  f.dest = dest;
  f.journey = journey;
  f.seq = seq;
  f.duration = duration;
  return make_frame(std::move(f));
}
}  // namespace

BmwProtocol::BmwProtocol(Scheduler& scheduler, Radio& radio, Rng rng, MacParams params,
                         Tracer* tracer)
    : Dot11Base{scheduler, radio, rng, params, tracer} {}

void BmwProtocol::reliable_send(AppPacketPtr packet, std::vector<NodeId> receivers) {
  assert(packet != nullptr);
  if (receivers.empty()) {
    ReliableSendResult ok;
    ok.packet = std::move(packet);
    ok.success = true;
    report_done(std::move(ok));
    return;
  }
  if (!queue_admit(params_)) {
    ReliableSendResult r;
    r.packet = std::move(packet);
    r.failed_receivers = std::move(receivers);
    r.receivers = r.failed_receivers;
    r.drop_reason = DropReason::kQueueOverflow;
    report_done(r);
    return;
  }
  TxRequest req;
  req.reliable = true;
  req.packet = std::move(packet);
  req.receivers = std::move(receivers);
  ++stats_.reliable_requests;
  push_request(std::move(req));
  maybe_start();
}

void BmwProtocol::unreliable_send(AppPacketPtr packet, NodeId dest) {
  assert(packet != nullptr);
  if (!queue_admit(params_)) return;
  TxRequest req;
  req.reliable = false;
  req.packet = std::move(packet);
  req.dest = dest;
  ++stats_.unreliable_requests;
  push_request(std::move(req));
  maybe_start();
}

void BmwProtocol::maybe_start() {
  if (step_ != Step::kIdle && step_ != Step::kContend) return;
  if (!active_.has_value()) {
    if (queue_.empty()) return;
    Active a;
    a.req = std::move(queue_.front());
    queue_.pop_front();
    a.pending = a.req.receivers;
    active_.emplace(std::move(a));
  }
  set_step(Step::kContend);
  contend();
}

void BmwProtocol::on_contention_won() {
  if (!active_.has_value()) {
    if (queue_.empty()) {
      set_step(Step::kIdle);
      return;
    }
    Active a;
    a.req = std::move(queue_.front());
    queue_.pop_front();
    a.pending = a.req.receivers;
    active_.emplace(std::move(a));
  }
  Active& a = *active_;
  if (!a.req.reliable) {
    if (!transmit_now(make_data80211(id(), a.req.dest, {}, a.req.packet, a.req.packet->seq,
                                     SimTime::zero()))) {
      set_step(Step::kContend);
      post_tx_backoff();
    }
    return;
  }
  ++contention_phases_;
  if (a.rr >= a.pending.size()) a.rr = 0;
  current_receiver_ = a.pending[a.rr];
  unsigned& tries = a.attempts[current_receiver_];
  ++tries;
  if (tries > 1) ++stats_.retransmissions;
  set_step(Step::kWfCts);
  const SimTime nav = phy_.sifs + airtime_bytes(kCtsBytes) + phy_.sifs +
                      airtime_bytes(kDot11DataFramingBytes + a.req.packet->payload_bytes) +
                      phy_.sifs + airtime_bytes(kAckBytes) + 4 * phy_.max_propagation;
  FramePtr rts = bmw_rts(id(), current_receiver_, a.req.packet->seq, nav,
                         a.req.packet->journey);
  count_control_tx(*rts);
  if (!transmit_now(std::move(rts))) receiver_attempt_failed(current_receiver_);
}

void BmwProtocol::on_transmit_complete(const FramePtr& frame, bool /*aborted*/) {
  if (!active_.has_value()) return;
  switch (frame->type) {
    case FrameType::kRts:
      timeout_ = scheduler_.schedule_in(
          phy_.sifs + airtime_bytes(kCtsBytes) + 2 * phy_.max_propagation + phy_.slot,
          [this] { on_cts_timeout(); });
      return;
    case FrameType::kData80211:
      if (!active_->req.reliable) {
        active_.reset();
        set_step(Step::kIdle);
        post_tx_backoff();
        maybe_start();
        return;
      }
      stats_.reliable_data_tx_time += airtime(*frame);
      set_step(Step::kWfAck);
      timeout_ = scheduler_.schedule_in(
          phy_.sifs + airtime_bytes(kAckBytes) + 2 * phy_.max_propagation + phy_.slot,
          [this] { on_ack_timeout(); });
      return;
    default:
      return;
  }
}

void BmwProtocol::handle_frame(const FramePtr& frame) {
  switch (frame->type) {
    case FrameType::kRts: {
      // Like BMMM, a BMW receiver answers an RTS addressed to it even with a
      // set NAV: within the sender's receiver round-robin, earlier exchanges
      // of the same logical broadcast raised it (and a caught-up CTS ends an
      // exchange far before its advertised reservation).  Only a node busy
      // with an exchange of its own stays silent.
      if (step_ != Step::kIdle && step_ != Step::kContend) return;
      // CTS advertises the sequence we still need: rts.seq if the frame is
      // missing, rts.seq + 1 if we already overheard it (caught up).
      const bool caught_up = have_data(frame->transmitter, frame->seq);
      // A caught-up CTS terminates the exchange: claim nothing beyond itself.
      const SimTime claim = caught_up
                                ? SimTime::zero()
                                : frame->duration - phy_.sifs - airtime_bytes(kCtsBytes);
      FramePtr cts = bmw_cts(id(), frame->transmitter,
                             caught_up ? frame->seq + 1 : frame->seq, claim, frame->journey);
      count_control_tx(*cts);
      respond_after_sifs(std::move(cts));
      return;
    }
    case FrameType::kCts: {
      if (step_ != Step::kWfCts || !active_.has_value() ||
          frame->transmitter != current_receiver_) {
        return;
      }
      scheduler_.cancel(timeout_);
      timeout_ = kInvalidEvent;
      if (frame->seq > active_->req.packet->seq) {
        // Receiver overheard a previous transmission: already has the frame.
        receiver_confirmed(current_receiver_);
        return;
      }
      const TxRequest& req = active_->req;
      FramePtr data = make_data80211(id(), current_receiver_, req.receivers, req.packet,
                                     req.packet->seq, phy_.sifs + airtime_bytes(kAckBytes));
      respond_after_sifs(std::move(data), [this] {
        if (step_ == Step::kWfCts && active_.has_value()) {
          receiver_attempt_failed(current_receiver_);
        }
      });
      return;
    }
    case FrameType::kData80211: {
      // Dedup applies only to data frames that belong to a recovery exchange
      // (duration > 0: they reserve the medium for their ACK, and can be
      // retransmitted).  One-shot data — hellos and 802.11-style multicast —
      // shares the transmitter's seq space with reliable traffic and must
      // never be swallowed by the duplicate filter.
      if (frame->duration <= SimTime::zero()) {
        deliver_up(*frame);
        return;
      }
      if (remember_data(frame->transmitter, frame->seq)) deliver_up(*frame);
      if (frame->dest == id() && (step_ == Step::kIdle || step_ == Step::kContend)) {
        FramePtr ack = make_ack(id(), frame->transmitter, frame->seq, frame->journey);
        count_control_tx(*ack);
        respond_after_sifs(std::move(ack));
      }
      return;
    }
    case FrameType::kAck:
      if (step_ == Step::kWfAck && active_.has_value() &&
          frame->transmitter == current_receiver_) {
        scheduler_.cancel(timeout_);
        timeout_ = kInvalidEvent;
        receiver_confirmed(current_receiver_);
      }
      return;
    default:
      return;
  }
}

void BmwProtocol::on_cts_timeout() {
  timeout_ = kInvalidEvent;
  if (step_ != Step::kWfCts) return;
  receiver_attempt_failed(current_receiver_);
}

void BmwProtocol::on_ack_timeout() {
  timeout_ = kInvalidEvent;
  if (step_ != Step::kWfAck) return;
  receiver_attempt_failed(current_receiver_);
}

void BmwProtocol::receiver_confirmed(NodeId r) {
  Active& a = *active_;
  std::erase(a.pending, r);
  reset_cw();
  next_receiver();
}

void BmwProtocol::receiver_attempt_failed(NodeId r) {
  Active& a = *active_;
  if (a.attempts[r] > params_.retry_limit) {
    a.failed.push_back(r);
    std::erase(a.pending, r);
  } else {
    ++a.rr;  // move on; the round-robin returns to this receiver later
    bump_cw();
  }
  next_receiver();
}

void BmwProtocol::next_receiver() {
  Active& a = *active_;
  if (a.pending.empty()) {
    finish();
    return;
  }
  set_step(Step::kContend);
  backoff_.draw(cw_);
  contend();
}

void BmwProtocol::finish() {
  Active& a = *active_;
  ReliableSendResult result;
  result.packet = a.req.packet;
  result.success = a.failed.empty();
  result.failed_receivers = a.failed;
  result.receivers = a.req.receivers;
  if (!result.success) result.drop_reason = DropReason::kRetryExhausted;
  unsigned total = 0;
  for (const auto& [r, n] : a.attempts) total += n;
  result.transmissions = total;
  if (result.success) {
    ++stats_.reliable_delivered;
  } else {
    ++stats_.reliable_dropped;
  }
  active_.reset();
  reset_cw();
  set_step(Step::kIdle);
  report_done(result);
  post_tx_backoff();
  maybe_start();
}

void BmwProtocol::for_each_pending_reliable(const PendingReliableFn& fn) const {
  if (active_.has_value() && active_->req.reliable && active_->req.packet != nullptr) {
    fn(active_->req.packet, active_->req.receivers);
  }
  MacProtocol::for_each_pending_reliable(fn);
}

}  // namespace rmacsim
