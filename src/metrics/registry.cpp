#include "metrics/registry.hpp"

#include <algorithm>
#include <cassert>

namespace rmacsim {

std::string metric_label_key(const MetricLabels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '=';
    key += v;
    key += '\x1f';
  }
  return key;
}

MetricsRegistry::Series& MetricsRegistry::intern(std::string_view family, MetricKind kind,
                                                 MetricLabels&& labels, std::string_view help,
                                                 double lo, double hi, std::size_t bins) {
  std::sort(labels.begin(), labels.end());
  auto fam_it = families_.find(family);
  if (fam_it == families_.end()) {
    Family fam;
    fam.kind = kind;
    fam.help = std::string{help};
    fam_it = families_.emplace(std::string{family}, std::move(fam)).first;
  }
  Family& fam = fam_it->second;
  // A family's kind is fixed by its first instrument; mixing kinds under one
  // name is a programming error (exports would be ill-typed).
  assert(fam.kind == kind && "metric family re-registered with a different kind");
  if (fam.help.empty() && !help.empty()) fam.help = std::string{help};

  const std::string key = metric_label_key(labels);
  if (const auto hit = fam.by_label_key.find(key); hit != fam.by_label_key.end()) {
    return series_[hit->second];
  }

  Series s;
  s.labels = std::move(labels);
  switch (kind) {
    case MetricKind::kCounter: s.counter = &counters_.emplace_back(); break;
    case MetricKind::kGauge: s.gauge = &gauges_.emplace_back(); break;
    case MetricKind::kHistogram: s.histogram = &histograms_.emplace_back(lo, hi, bins); break;
  }
  const std::size_t idx = series_.size();
  series_.push_back(std::move(s));
  fam.by_label_key.emplace(key, idx);
  // Keep the family's series list sorted by label key so exports are
  // deterministic regardless of creation order.
  const auto pos = std::lower_bound(
      fam.series.begin(), fam.series.end(), key, [this](std::size_t i, const std::string& k) {
        return metric_label_key(series_[i].labels) < k;
      });
  fam.series.insert(pos, idx);
  return series_[idx];
}

MetricCounter& MetricsRegistry::counter(std::string_view family, MetricLabels labels,
                                        std::string_view help) {
  return *intern(family, MetricKind::kCounter, std::move(labels), help, 0, 0, 0).counter;
}

MetricGauge& MetricsRegistry::gauge(std::string_view family, MetricLabels labels,
                                    std::string_view help) {
  return *intern(family, MetricKind::kGauge, std::move(labels), help, 0, 0, 0).gauge;
}

StreamingHistogram& MetricsRegistry::histogram(std::string_view family, double lo, double hi,
                                               std::size_t bins, MetricLabels labels,
                                               std::string_view help) {
  return *intern(family, MetricKind::kHistogram, std::move(labels), help, lo, hi, bins)
              .histogram;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  other.for_each_series([this](const SeriesView& v) {
    switch (v.kind) {
      case MetricKind::kCounter:
        counter(*v.family, *v.labels, *v.help).inc(v.counter->value());
        break;
      case MetricKind::kGauge:
        gauge(*v.family, *v.labels, *v.help).set(v.gauge->value());
        break;
      case MetricKind::kHistogram: {
        StreamingHistogram& dst =
            histogram(*v.family, v.histogram->bin_lo(), v.histogram->bin_hi(),
                      v.histogram->bins().size(), *v.labels, *v.help);
        const StreamingHistogram& src = *v.histogram;
        if (dst.bin_lo() == src.bin_lo() && dst.bin_hi() == src.bin_hi() &&
            dst.bins().size() == src.bins().size()) {
          dst.merge(src);
        } else {
          // Shape mismatch (family re-registered with different bins):
          // preserve the mass, approximately, at the source's summary points.
          for (std::uint64_t i = 0; i < src.count(); ++i) dst.add(src.mean());
        }
        break;
      }
    }
  });
}

}  // namespace rmacsim
