#include "metrics/export.hpp"

#include <filesystem>

#include "sim/bufio.hpp"

namespace rmacsim {

namespace {

void labels_openmetrics(BufWriter& b, const MetricLabels& labels) {
  if (labels.empty()) return;
  b.ch('{');
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) b.ch(',');
    b.str(labels[i].first);
    b.lit("=\"");
    b.escaped(labels[i].second);
    b.ch('"');
  }
  b.ch('}');
}

// Histogram expansion: cumulative `_bucket{le=...}` counts per OpenMetrics.
void histogram_openmetrics(BufWriter& b, const std::string& family, const MetricLabels& labels,
                           const StreamingHistogram& h) {
  std::uint64_t cum = h.underflow();
  const auto bucket = [&](double le, std::uint64_t count, bool inf) {
    b.str(family);
    b.lit("_bucket{");
    for (const auto& [k, v] : labels) {
      b.str(k);
      b.lit("=\"");
      b.escaped(v);
      b.lit("\",");
    }
    b.lit("le=\"");
    if (inf) {
      b.lit("+Inf");
    } else {
      b.dbl9(le);
    }
    b.lit("\"} ");
    b.u64(count);
    b.ch('\n');
  };
  const double width = (h.bin_hi() - h.bin_lo()) / static_cast<double>(h.bins().size());
  for (std::size_t i = 0; i < h.bins().size(); ++i) {
    cum += h.bins()[i];
    bucket(h.bin_lo() + width * static_cast<double>(i + 1), cum, false);
  }
  bucket(0.0, h.count(), true);
  b.str(family);
  b.lit("_sum");
  labels_openmetrics(b, labels);
  b.ch(' ');
  b.dbl9(h.mean() * static_cast<double>(h.count()));
  b.ch('\n');
  b.str(family);
  b.lit("_count");
  labels_openmetrics(b, labels);
  b.ch(' ');
  b.u64(h.count());
  b.ch('\n');
}

}  // namespace

std::string to_openmetrics(const MetricsRegistry& registry) {
  BufWriter b;
  const std::string* last_family = nullptr;
  registry.for_each_series([&](const MetricsRegistry::SeriesView& v) {
    if (last_family == nullptr || *last_family != *v.family) {
      last_family = v.family;
      b.lit("# TYPE ");
      b.str(*v.family);
      switch (v.kind) {
        case MetricKind::kCounter: b.lit(" counter\n"); break;
        case MetricKind::kGauge: b.lit(" gauge\n"); break;
        case MetricKind::kHistogram: b.lit(" histogram\n"); break;
      }
      if (!v.help->empty()) {
        b.lit("# HELP ");
        b.str(*v.family);
        b.ch(' ');
        b.str(*v.help);
        b.ch('\n');
      }
    }
    switch (v.kind) {
      case MetricKind::kCounter:
        b.str(*v.family);
        labels_openmetrics(b, *v.labels);
        b.ch(' ');
        b.u64(v.counter->value());
        b.ch('\n');
        break;
      case MetricKind::kGauge:
        b.str(*v.family);
        labels_openmetrics(b, *v.labels);
        b.ch(' ');
        b.dbl9(v.gauge->value());
        b.ch('\n');
        break;
      case MetricKind::kHistogram:
        histogram_openmetrics(b, *v.family, *v.labels, *v.histogram);
        break;
    }
  });
  b.lit("# EOF\n");
  return std::move(b.s);
}

std::string to_metrics_json(const MetricsRegistry& registry, const LedgerSummary& ledger,
                            const Profiler::Report* profile) {
  return to_metrics_json(registry, ledger, profile, std::string{}, std::string{});
}

std::string to_metrics_json(const MetricsRegistry& registry, const LedgerSummary& ledger,
                            const Profiler::Report* profile, const std::string& extra_key,
                            const std::string& extra_json) {
  BufWriter b;
  b.lit("{\n  \"metrics\": {");
  const std::string* last_family = nullptr;
  bool first_series = true;
  registry.for_each_series([&](const MetricsRegistry::SeriesView& v) {
    if (last_family == nullptr || *last_family != *v.family) {
      if (last_family != nullptr) b.lit("]}");
      if (last_family != nullptr) b.ch(',');
      last_family = v.family;
      first_series = true;
      b.lit("\n    \"");
      b.escaped(*v.family);
      b.lit("\": {\"type\": \"");
      switch (v.kind) {
        case MetricKind::kCounter: b.lit("counter"); break;
        case MetricKind::kGauge: b.lit("gauge"); break;
        case MetricKind::kHistogram: b.lit("histogram"); break;
      }
      b.lit("\", \"series\": [");
    }
    if (!first_series) b.ch(',');
    first_series = false;
    b.lit("\n      {\"labels\": {");
    for (std::size_t i = 0; i < v.labels->size(); ++i) {
      if (i != 0) b.lit(", ");
      b.ch('"');
      b.escaped((*v.labels)[i].first);
      b.lit("\": \"");
      b.escaped((*v.labels)[i].second);
      b.ch('"');
    }
    b.lit("}, ");
    switch (v.kind) {
      case MetricKind::kCounter:
        b.lit("\"value\": ");
        b.u64(v.counter->value());
        break;
      case MetricKind::kGauge:
        b.lit("\"value\": ");
        b.dbl9(v.gauge->value());
        break;
      case MetricKind::kHistogram: {
        const StreamingHistogram& h = *v.histogram;
        b.lit("\"count\": ");
        b.u64(h.count());
        b.lit(", \"sum\": ");
        b.dbl9(h.mean() * static_cast<double>(h.count()));
        b.lit(", \"lo\": ");
        b.dbl9(h.bin_lo());
        b.lit(", \"hi\": ");
        b.dbl9(h.bin_hi());
        b.lit(", \"underflow\": ");
        b.u64(h.underflow());
        b.lit(", \"overflow\": ");
        b.u64(h.overflow());
        b.lit(", \"bins\": [");
        for (std::size_t i = 0; i < h.bins().size(); ++i) {
          if (i != 0) b.ch(',');
          b.u64(h.bins()[i]);
        }
        b.ch(']');
        break;
      }
    }
    b.ch('}');
  });
  if (last_family != nullptr) b.lit("]}");
  b.lit("\n  },\n  \"ledger\": {\n    \"journeys\": ");
  b.u64(ledger.journeys);
  b.lit(",\n    \"expected\": ");
  b.u64(ledger.expected);
  b.lit(",\n    \"delivered\": ");
  b.u64(ledger.delivered);
  b.lit(",\n    \"dropped\": {");
  bool first_reason = true;
  for (std::size_t i = 0; i < kDropReasonCount; ++i) {
    const auto reason = static_cast<DropReason>(i);
    if (reason == DropReason::kNone) continue;
    if (!first_reason) b.lit(", ");
    first_reason = false;
    b.ch('"');
    b.lit(to_string(reason));
    b.lit("\": ");
    b.u64(ledger.dropped[i]);
  }
  b.lit("},\n    \"conservation_ok\": ");
  b.lit(ledger.conservation_ok() ? "true" : "false");
  b.lit("\n  }");
  if (profile != nullptr) {
    b.lit(",\n  \"profile\": {\n    \"wall_s\": ");
    b.dbl9(profile->wall_s);
    b.lit(",\n    \"accounted_s\": ");
    b.dbl9(profile->accounted_s);
    b.lit(",\n    \"sections\": [");
    for (std::size_t i = 0; i < profile->sections.size(); ++i) {
      const Profiler::SectionStats& s = profile->sections[i];
      if (i != 0) b.ch(',');
      b.lit("\n      {\"name\": \"");
      b.escaped(s.name);
      b.lit("\", \"calls\": ");
      b.u64(s.calls);
      b.lit(", \"total_ns\": ");
      b.u64(s.total_ns);
      b.lit(", \"self_ns\": ");
      b.u64(s.self_ns);
      b.ch('}');
    }
    b.lit("\n    ]\n  }");
  }
  if (!extra_key.empty()) {
    b.lit(",\n  \"");
    b.escaped(extra_key);
    b.lit("\": ");
    b.str(extra_json);
  }
  b.lit("\n}\n");
  return std::move(b.s);
}

bool write_metrics_artifacts(const MetricsRegistry& registry, const LedgerSummary& ledger,
                             const Profiler::Report* profile, const std::string& dir,
                             const std::string& prefix, std::string& text_path,
                             std::string& json_path) {
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
  }
  const std::string base = dir.empty() ? prefix : dir + "/" + prefix;
  text_path = base + "_metrics.txt";
  json_path = base + "_metrics.json";
  BufWriter text;
  text.s = to_openmetrics(registry);
  BufWriter json;
  json.s = to_metrics_json(registry, ledger, profile);
  return text.flush_to(text_path) && json.flush_to(json_path);
}

}  // namespace rmacsim
