#include "metrics/snapshot_io.hpp"

#include <cstddef>
#include <vector>

#include "sim/strfmt.hpp"

namespace rmacsim {

namespace {

bool set_error(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
  return false;
}

MetricLabels labels_from(const JsonValue& obj) {
  MetricLabels labels;
  labels.reserve(obj.size());
  for (const auto& [k, v] : obj.object()) labels.emplace_back(k, v.as_string());
  return labels;
}

}  // namespace

DropReason drop_reason_from_string(std::string_view token) noexcept {
  for (std::size_t i = 0; i < kDropReasonCount; ++i) {
    const auto r = static_cast<DropReason>(i);
    if (token == to_string(r)) return r;
  }
  return DropReason::kNone;
}

bool parse_metrics_snapshot(const JsonValue& doc, MetricsRegistry& registry,
                            LedgerSummary& ledger, std::string* error) {
  if (!doc.is_object()) return set_error(error, "snapshot: document is not an object");
  const JsonValue* metrics = doc.find("metrics");
  const JsonValue* ledger_doc = doc.find("ledger");
  if (metrics == nullptr || !metrics->is_object()) {
    return set_error(error, "snapshot: missing \"metrics\" object");
  }
  if (ledger_doc == nullptr || !ledger_doc->is_object()) {
    return set_error(error, "snapshot: missing \"ledger\" object");
  }

  for (const auto& [family, fam] : metrics->object()) {
    const std::string& type = fam.at("type").as_string();
    const JsonValue& series = fam.at("series");
    if (!series.is_array()) {
      return set_error(error, cat("snapshot: family ", family, " has no series array"));
    }
    for (const JsonValue& s : series.array()) {
      MetricLabels labels = labels_from(s.at("labels"));
      if (type == "counter") {
        registry.counter(family, std::move(labels)).inc(s.at("value").as_u64());
      } else if (type == "gauge") {
        registry.gauge(family, std::move(labels)).set(s.at("value").as_number());
      } else if (type == "histogram") {
        const JsonValue& bins_doc = s.at("bins");
        if (!bins_doc.is_array() || bins_doc.size() == 0) {
          return set_error(error, cat("snapshot: family ", family, " histogram has no bins"));
        }
        std::vector<std::uint64_t> bins;
        bins.reserve(bins_doc.size());
        for (const JsonValue& b : bins_doc.array()) bins.push_back(b.as_u64());
        const double lo = s.at("lo").as_number();
        const double hi = s.at("hi").as_number();
        // Restore into a scratch histogram, then fold bin-wise so reading
        // into an accumulator registry behaves exactly like merge().
        StreamingHistogram scratch{lo, hi, bins.size()};
        scratch.restore(bins, s.at("underflow").as_u64(), s.at("overflow").as_u64(),
                        s.at("count").as_u64(), s.at("sum").as_number());
        registry.histogram(family, lo, hi, bins.size(), std::move(labels)).merge(scratch);
      } else {
        return set_error(error, cat("snapshot: family ", family, " has unknown type ", type));
      }
    }
  }

  ledger.journeys += ledger_doc->at("journeys").as_u64();
  ledger.expected += ledger_doc->at("expected").as_u64();
  ledger.delivered += ledger_doc->at("delivered").as_u64();
  for (const auto& [reason_token, count] : ledger_doc->at("dropped").object()) {
    const DropReason reason = drop_reason_from_string(reason_token);
    if (reason == DropReason::kNone) {
      return set_error(error, cat("snapshot: unknown drop reason ", reason_token));
    }
    ledger.dropped[static_cast<std::size_t>(reason)] += count.as_u64();
  }
  return true;
}

bool parse_metrics_snapshot(std::string_view text, MetricsRegistry& registry,
                            LedgerSummary& ledger, std::string* error) {
  std::string parse_error;
  const JsonValue doc = JsonValue::parse(text, &parse_error);
  if (doc.is_null() && !parse_error.empty()) {
    return set_error(error, cat("snapshot: ", parse_error));
  }
  return parse_metrics_snapshot(doc, registry, ledger, error);
}

}  // namespace rmacsim
