#include "metrics/loss_ledger.hpp"

#include <cassert>

namespace rmacsim {

LossLedger::Journey* LossLedger::find(JourneyId journey) {
  const auto it = journeys_.find(journey);
  return it == journeys_.end() ? nullptr : &it->second;
}

void LossLedger::on_generated(JourneyId journey, NodeId origin) {
  assert(node_count_ >= 1 && "LossLedger::set_node_count before on_generated");
  Journey& j = journeys_[journey];
  j.origin = origin;
  j.slots.assign(node_count_, Slot{});
}

void LossLedger::on_attempt(JourneyId journey, std::span<const NodeId> receivers) {
  Journey* j = find(journey);
  if (j == nullptr) return;  // hello or untracked packet
  for (const NodeId r : receivers) {
    if (r < j->slots.size()) ++j->slots[r].attempts;
  }
}

void LossLedger::on_attempt_resolved(JourneyId journey, NodeId receiver, bool mac_success,
                                     DropReason reason) {
  Journey* j = find(journey);
  if (j == nullptr || receiver >= j->slots.size()) return;
  Slot& s = j->slots[receiver];
  ++s.resolved;
  if (mac_success) {
    ++s.resolved_ok;
  } else if (s.first_failure == DropReason::kNone) {
    s.first_failure = reason == DropReason::kNone ? DropReason::kRetryExhausted : reason;
  }
}

void LossLedger::on_delivered(JourneyId journey, NodeId receiver) {
  Journey* j = find(journey);
  if (j == nullptr || receiver >= j->slots.size()) return;
  j->slots[receiver].delivered = true;
}

void LossLedger::sweep_end_of_run(JourneyId journey, std::span<const NodeId> receivers) {
  Journey* j = find(journey);
  if (j == nullptr) return;
  for (const NodeId r : receivers) {
    if (r < j->slots.size()) j->slots[r].swept = true;
  }
}

LedgerSummary LossLedger::finalize() const {
  LedgerSummary out;
  out.journeys = journeys_.size();
  const auto drop = [&out](DropReason r) { ++out.dropped[static_cast<std::size_t>(r)]; };
  for (const auto& [id, j] : journeys_) {
    (void)id;
    for (NodeId n = 0; n < j.slots.size(); ++n) {
      if (n == j.origin) continue;  // the source trivially has its own packet
      ++out.expected;
      const Slot& s = j.slots[n];
      // Exactly one terminal outcome per slot, checked most-certain first.
      if (s.delivered) {
        ++out.delivered;
      } else if (s.attempts == 0) {
        // No copy-holder ever targeted this receiver: the loss cascaded
        // from upstream (tree hole, or the upstream copy itself died).
        drop(DropReason::kUpstreamLoss);
      } else if (s.resolved < s.attempts) {
        // An opened MAC invocation never reported back.  In-flight work at
        // the end of the run is swept and excused; anything else is a drop
        // path that forgot to record its reason — the leak the conservation
        // check exists to catch.
        drop(s.swept ? DropReason::kEndOfRun : DropReason::kUnaccounted);
      } else if (s.first_failure != DropReason::kNone) {
        drop(s.first_failure);
      } else {
        // Every attempt resolved "success" yet the packet never arrived:
        // the MAC believed a lie (hidden-node data collision, blind 802.11
        // multicast, MX NAK silence misread as consent).
        drop(DropReason::kDataCollision);
      }
    }
  }
  return out;
}

}  // namespace rmacsim
