// Engine self-profiler: scoped wall-clock timers attributing run time to
// subsystems and event-callback sites.
//
// Usage: name a section once (static, process-lifetime id), then open an
// RMAC_PROF_SCOPE at the site.  When no profiler is attached to the current
// thread the scope is a single thread-local pointer null-check — the same
// zero-cost-when-unregistered discipline as the tracer and the metrics
// registry — so instrumented code ships enabled.
//
//   void Medium::begin_transmission(...) {
//     RMAC_PROF_SCOPE("phy.begin_transmission");
//     ...
//   }
//
// Scopes nest: each section accumulates *total* (inclusive) and *self*
// (exclusive of enclosed scopes) time, so the hotspot table answers "where
// does the wall clock actually go" rather than double-counting parents.
// Attachment is per-thread (parallel_runner runs experiments on worker
// threads; each run attaches its own profiler), but the section-name table
// is global and mutex-guarded, so ids minted on any thread agree.
//
// The profiler reads only the wall clock, never simulation state, and
// simulation code never reads the profiler — attaching it cannot perturb
// event order, golden digests, or any simulated metric.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace rmacsim {

using ProfSectionId = std::uint32_t;

// Global section-name interning; returns a stable id for `name` (which must
// outlive the process — pass string literals).
[[nodiscard]] ProfSectionId prof_section(const char* name);

class Profiler {
public:
  // Attach to / detach from the calling thread.  At most one profiler per
  // thread; attach replaces the previous one.
  void attach() noexcept;
  static void detach() noexcept;
  [[nodiscard]] static Profiler* current() noexcept { return t_current_; }

  struct SectionStats {
    std::string name;
    std::uint64_t calls{0};
    std::uint64_t total_ns{0};  // inclusive
    std::uint64_t self_ns{0};   // exclusive of nested scopes
  };
  struct Report {
    double wall_s{0.0};          // attach → report() wall time
    double accounted_s{0.0};     // Σ section self time
    std::vector<SectionStats> sections;  // sorted by self_ns, descending
  };
  [[nodiscard]] Report report() const;

  // --- scope bookkeeping (used by ProfScope; not part of the public API) --
  struct Frame {
    ProfSectionId section{0};
    std::uint64_t start_ns{0};
    std::uint64_t child_ns{0};  // time spent in nested scopes
  };
  void enter(ProfSectionId section) noexcept;
  void leave() noexcept;

  [[nodiscard]] static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

private:
  struct Accum {
    std::uint64_t calls{0};
    std::uint64_t total_ns{0};
    std::uint64_t self_ns{0};
  };
  // Inline thread-local so current() compiles to one TLS load at every
  // RMAC_PROF_SCOPE site instead of an out-of-line call — scopes sit on
  // per-event paths where a function call is measurable.
  static inline thread_local Profiler* t_current_ = nullptr;
  std::vector<Accum> sections_;   // indexed by ProfSectionId
  std::vector<Frame> stack_;
  std::uint64_t attached_at_ns_{0};
};

// RAII profiling scope; no-op (one TLS load + branch) when no profiler is
// attached to this thread.
class ProfScope {
public:
  explicit ProfScope(ProfSectionId section) noexcept : prof_{Profiler::current()} {
    if (prof_ != nullptr) prof_->enter(section);
  }
  ~ProfScope() {
    if (prof_ != nullptr) prof_->leave();
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

private:
  Profiler* prof_;
};

// Names the enclosing scope; the section id is minted once per site.
#define RMAC_PROF_SCOPE(name_literal)                                      \
  static const ::rmacsim::ProfSectionId rmac_prof_sid_ =                   \
      ::rmacsim::prof_section(name_literal);                               \
  ::rmacsim::ProfScope rmac_prof_scope_{rmac_prof_sid_}

}  // namespace rmacsim
