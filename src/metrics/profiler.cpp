#include "metrics/profiler.hpp"

#include <algorithm>
#include <mutex>
#include <string_view>
#include <vector>

namespace rmacsim {

namespace {

// Global section-name table.  Sections are minted once per call site
// (function-local static), so the mutex is off every hot path.
std::mutex g_sections_mutex;
std::vector<const char*> g_section_names;

}  // namespace

ProfSectionId prof_section(const char* name) {
  const std::lock_guard<std::mutex> lock(g_sections_mutex);
  for (ProfSectionId i = 0; i < g_section_names.size(); ++i) {
    if (g_section_names[i] == name || std::string_view{g_section_names[i]} == name) return i;
  }
  g_section_names.push_back(name);
  return static_cast<ProfSectionId>(g_section_names.size() - 1);
}

void Profiler::attach() noexcept {
  t_current_ = this;
  attached_at_ns_ = now_ns();
}

void Profiler::detach() noexcept { t_current_ = nullptr; }

void Profiler::enter(ProfSectionId section) noexcept {
  stack_.push_back(Frame{section, now_ns(), 0});
}

void Profiler::leave() noexcept {
  const Frame frame = stack_.back();
  stack_.pop_back();
  const std::uint64_t dt = now_ns() - frame.start_ns;
  if (frame.section >= sections_.size()) sections_.resize(frame.section + 1);
  Accum& a = sections_[frame.section];
  ++a.calls;
  a.total_ns += dt;
  a.self_ns += dt - std::min(dt, frame.child_ns);
  if (!stack_.empty()) stack_.back().child_ns += dt;
}

Profiler::Report Profiler::report() const {
  Report out;
  out.wall_s = static_cast<double>(now_ns() - attached_at_ns_) * 1e-9;
  std::vector<const char*> names;
  {
    const std::lock_guard<std::mutex> lock(g_sections_mutex);
    names = g_section_names;
  }
  for (ProfSectionId i = 0; i < sections_.size(); ++i) {
    const Accum& a = sections_[i];
    if (a.calls == 0) continue;
    SectionStats s;
    s.name = i < names.size() ? names[i] : "?";
    s.calls = a.calls;
    s.total_ns = a.total_ns;
    s.self_ns = a.self_ns;
    out.accounted_s += static_cast<double>(a.self_ns) * 1e-9;
    out.sections.push_back(std::move(s));
  }
  std::sort(out.sections.begin(), out.sections.end(),
            [](const SectionStats& a, const SectionStats& b) {
              return a.self_ns != b.self_ns ? a.self_ns > b.self_ns : a.name < b.name;
            });
  return out;
}

}  // namespace rmacsim
