// Packet-loss ledger: per-(journey, receiver) terminal-outcome accounting.
//
// The Abstract MAC Layer line of work makes per-layer delivery accounting
// the formal interface between MAC and upper layers; this ledger is that
// accounting made machine-checkable.  Every generated application packet
// opens one slot per expected receiver (every node except the origin — the
// multicast group is "everyone", §4.1.1).  The network layer then records,
// per receiver:
//
//   * attempts   — a copy-holder handed the packet to its MAC with this
//                  receiver in the target list (forwarding, any hop);
//   * resolutions— the MAC reported that invocation done, per receiver,
//                  with success or a typed DropReason;
//   * deliveries — the receiver's app saw the packet (first unique copy).
//
// finalize() classifies each slot into exactly one terminal outcome, so
//
//     expected = Σ delivered + Σ dropped_by_reason
//
// holds *by construction* — the interesting invariant is the kUnaccounted
// bucket: a slot whose MAC attempt never resolved (and was not swept as
// end-of-run in-flight work) is a leak, i.e. a drop path that forgot to
// report.  run_experiment asserts leaks == 0; the mutation test flips a
// fault knob that swallows a report and proves the check fires.
//
// Determinism: the ledger is driven only by simulation events and container
// state — no wall clock, no RNG — so attaching it never perturbs a run.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/ids.hpp"
#include "stats/metrics.hpp"

namespace rmacsim {

// Per-reason terminal breakdown plus the conservation verdict, carried on
// ExperimentResult and exported into the metrics snapshot.
struct LedgerSummary {
  std::uint64_t journeys{0};   // generated packets tracked
  std::uint64_t expected{0};   // journeys × (nodes − 1) reception slots
  std::uint64_t delivered{0};  // slots that reached their receiver
  std::array<std::uint64_t, kDropReasonCount> dropped{};  // by DropReason

  [[nodiscard]] std::uint64_t total_dropped() const noexcept {
    std::uint64_t n = 0;
    for (const std::uint64_t d : dropped) n += d;
    return n;
  }
  [[nodiscard]] std::uint64_t leaks() const noexcept {
    return dropped[static_cast<std::size_t>(DropReason::kUnaccounted)];
  }
  // The conservation invariant: every expected reception terminated in
  // exactly one outcome AND none of them terminated by falling off the
  // books.  finalize() makes the sum structural, so `leaks() == 0` is the
  // part that can actually fail — but we check both, since the summary also
  // round-trips through JSON where the sum can rot independently.
  [[nodiscard]] bool conservation_ok() const noexcept {
    return expected == delivered + total_dropped() && leaks() == 0;
  }
};

// The mutators are virtual for exactly one subclass: the sharded engine's
// per-shard buffer (scenario/sharded_network.*), which records the calls and
// replays them into a master ledger in deterministic merge order at the end
// of the run.  The dispatch sits on per-packet (not per-event) paths.
class LossLedger {
public:
  virtual ~LossLedger() = default;

  // Number of nodes in the network; every node but the journey's origin is
  // an expected receiver.  Must be set (>= 1) before the first on_generated.
  void set_node_count(std::uint32_t n) { node_count_ = n; }

  // The origin generated a packet: open (node_count − 1) reception slots.
  virtual void on_generated(JourneyId journey, NodeId origin);

  // A copy-holder handed the packet to its MAC targeting `receivers`.
  virtual void on_attempt(JourneyId journey, std::span<const NodeId> receivers);

  // The MAC resolved one receiver of one invocation.  `reason` names the
  // cause when `mac_success` is false (kNone falls back to kRetryExhausted).
  virtual void on_attempt_resolved(JourneyId journey, NodeId receiver, bool mac_success,
                                   DropReason reason);

  // The receiver's application delivered the packet (first unique copy).
  // Delivery wins over any concurrent failure record.
  virtual void on_delivered(JourneyId journey, NodeId receiver);

  // End-of-run sweep: the request is still sitting in a MAC queue (or in
  // service) when the simulation stops; its unresolved receivers are losses
  // of kind kEndOfRun, not leaks.
  virtual void sweep_end_of_run(JourneyId journey, std::span<const NodeId> receivers);

  // Classify every slot into exactly one terminal outcome.  Idempotent and
  // const — callable mid-run for progress snapshots.
  [[nodiscard]] LedgerSummary finalize() const;

  [[nodiscard]] std::uint64_t journeys_tracked() const noexcept { return journeys_.size(); }

private:
  struct Slot {
    std::uint16_t attempts{0};        // MAC invocations opened for this receiver
    std::uint16_t resolved{0};        // ... of which the MAC reported done
    std::uint16_t resolved_ok{0};     // ... reported as success
    bool delivered{false};
    bool swept{false};                // covered by the end-of-run sweep
    DropReason first_failure{DropReason::kNone};
  };
  struct Journey {
    NodeId origin{kInvalidNode};
    std::vector<Slot> slots;  // indexed by NodeId; origin slot unused
  };

  [[nodiscard]] Journey* find(JourneyId journey);

  std::uint32_t node_count_{0};
  std::unordered_map<JourneyId, Journey> journeys_;
};

}  // namespace rmacsim
