// Metrics snapshot deserialization: the inverse of to_metrics_json.
//
// The campaign coordinator receives per-cell metrics documents as JSON text
// (worker result frames, cached cell records) and folds them into a live
// aggregate with MetricsRegistry::merge.  This module rebuilds a registry +
// ledger from such a document.  Reconstruction is exact for everything the
// exporters read back: counters keep their 64-bit values, gauges their
// 9-significant-digit doubles, histograms their bins/under/overflow/count/sum
// (min/max are not exported and collapse to the bin range on restore).
#pragma once

#include <string>
#include <string_view>

#include "metrics/loss_ledger.hpp"
#include "metrics/registry.hpp"
#include "sim/json.hpp"

namespace rmacsim {

// Inverse of to_string(DropReason); returns kNone for unknown tokens.
[[nodiscard]] DropReason drop_reason_from_string(std::string_view token) noexcept;

// Rebuild `registry` and `ledger` from a parsed metrics document (the
// {"metrics": ..., "ledger": ...} shape written by to_metrics_json; extra
// top-level members such as "profile" or "campaign" are ignored).  Series
// are folded *into* the given registry — pass a fresh one for a verbatim
// reconstruction, or an accumulator to merge-on-read.  Returns false and
// fills `error` (if non-null) when the document lacks the required shape.
bool parse_metrics_snapshot(const JsonValue& doc, MetricsRegistry& registry,
                            LedgerSummary& ledger, std::string* error = nullptr);

// Convenience overload: parse the JSON text first.
bool parse_metrics_snapshot(std::string_view text, MetricsRegistry& registry,
                            LedgerSummary& ledger, std::string* error = nullptr);

}  // namespace rmacsim
