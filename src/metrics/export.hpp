// Metrics snapshot serializers: OpenMetrics text and a JSON document that
// tools/metrics_report.py can diff and conservation-check offline.
//
// OpenMetrics naming scheme (see docs/simulator_internals.md):
//   rmacsim_<subsystem>_<quantity>[_total]{label="value",...} <number>
// `_total` marks monotone counters; gauges carry no suffix; histograms
// expand into `_bucket{le="..."}`, `_sum`, and `_count` series.  Families
// appear in name order and series in label order, so snapshots of a fixed
// seed are byte-identical across runs (the determinism test pins this) —
// with one carve-out: the rmacsim_shard_window_*_seconds worker/busy series
// are wall-clock measurements by design and vary run to run.  Every other
// series never reads the wall clock.
#pragma once

#include <string>

#include "metrics/loss_ledger.hpp"
#include "metrics/profiler.hpp"
#include "metrics/registry.hpp"

namespace rmacsim {

// Render the registry as OpenMetrics text (ends with "# EOF").
[[nodiscard]] std::string to_openmetrics(const MetricsRegistry& registry);

// Render registry + ledger (+ optional profiler report) as one JSON
// document.  `ledger` is required: the conservation re-check in
// tools/metrics_report.py reads it.  `profile` may be nullptr.
[[nodiscard]] std::string to_metrics_json(const MetricsRegistry& registry,
                                          const LedgerSummary& ledger,
                                          const Profiler::Report* profile);

// Same document with one extra top-level member appended after the standard
// keys: `"<extra_key>": <extra_json>` where `extra_json` is a pre-rendered
// JSON value.  The campaign coordinator uses this to attach its
// rmacsim-campaign-aggregate-v1 block while keeping the document readable by
// tools/metrics_report.py.  Pass an empty key for the plain document.
[[nodiscard]] std::string to_metrics_json(const MetricsRegistry& registry,
                                          const LedgerSummary& ledger,
                                          const Profiler::Report* profile,
                                          const std::string& extra_key,
                                          const std::string& extra_json);

// Write the rendered documents to <dir>/<prefix>_metrics.{txt,json}.
// Returns false if either file could not be written.  Outputs the chosen
// paths through the string refs.
bool write_metrics_artifacts(const MetricsRegistry& registry, const LedgerSummary& ledger,
                             const Profiler::Report* profile, const std::string& dir,
                             const std::string& prefix, std::string& text_path,
                             std::string& json_path);

}  // namespace rmacsim
