// Unified metrics registry: labeled counters, gauges, and streaming
// histograms behind one namespace-ordered, deterministic snapshot.
//
// Design mirrors the tracer's zero-cost-when-unregistered pattern (PR 3):
// components keep plain unconditional integer counters on their hot paths
// (a single `++` — no branch, no allocation, no tracer interaction, so
// golden digests and the allocs_per_tx gate are untouched), and a one-shot
// *collect pass* at snapshot time publishes them onto registry instruments.
// Code that wants live registry emit sites holds a `Counter*` / `Gauge*`
// handle and null-checks it — a detached registry costs one predictable
// branch, exactly like an unsubscribed trace category.
//
// Label sets are interned: the first instrument created for a
// (family, labels) pair allocates the series; later lookups with the same
// labels return the same instrument, so emit sites can re-resolve handles
// cheaply and exports never contain duplicate series.
//
// Naming scheme (documented in docs/simulator_internals.md): every family is
// `rmacsim_<subsystem>_<quantity>[_total]` — `_total` marks monotone
// counters, OpenMetrics-style — with snake_case label keys, e.g.
// `rmacsim_mac_frames_tx_total{protocol="rmac",frame="MRTS"}`.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/percentile.hpp"

namespace rmacsim {

// One `key=value` label; series identity is the sorted label vector.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class MetricCounter {
public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  void set(std::uint64_t v) noexcept { value_ = v; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

private:
  std::uint64_t value_{0};
};

class MetricGauge {
public:
  void set(double v) noexcept { value_ = v; }
  void add(double v) noexcept { value_ += v; }
  [[nodiscard]] double value() const noexcept { return value_; }

private:
  double value_{0.0};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Instrument lookup-or-create.  Returned references stay valid for the
  // registry's lifetime (series live in deques).  `help` is recorded the
  // first time a family is seen; later calls may pass "".
  MetricCounter& counter(std::string_view family, MetricLabels labels = {},
                         std::string_view help = "");
  MetricGauge& gauge(std::string_view family, MetricLabels labels = {},
                     std::string_view help = "");
  // Histograms reuse stats/percentile's StreamingHistogram: fixed bins over
  // [lo, hi) with saturating under/overflow — mergeable by bin-wise addition.
  StreamingHistogram& histogram(std::string_view family, double lo, double hi,
                                std::size_t bins, MetricLabels labels = {},
                                std::string_view help = "");

  // Merge every series of `other` into this registry: counters add,
  // gauges take the latest (other wins), histograms add bin-wise (shapes
  // must match; mismatched shapes fall back to re-adding summary points).
  void merge(const MetricsRegistry& other);

  [[nodiscard]] std::size_t series_count() const noexcept { return series_.size(); }
  [[nodiscard]] std::size_t family_count() const noexcept { return families_.size(); }

  // Deterministic iteration for exporters: families in name order, series
  // in interned-label order.
  struct SeriesView {
    const std::string* family;
    MetricKind kind;
    const std::string* help;
    const MetricLabels* labels;
    const MetricCounter* counter;        // kCounter
    const MetricGauge* gauge;            // kGauge
    const StreamingHistogram* histogram; // kHistogram
  };
  template <typename Fn>
  void for_each_series(Fn&& fn) const {
    for (const auto& [name, fam] : families_) {
      for (const std::size_t idx : fam.series) {
        const Series& s = series_[idx];
        fn(SeriesView{&name, fam.kind, &fam.help, &s.labels, s.counter, s.gauge, s.histogram});
      }
    }
  }

private:
  struct Series {
    MetricLabels labels;
    MetricCounter* counter{nullptr};
    MetricGauge* gauge{nullptr};
    StreamingHistogram* histogram{nullptr};
  };
  struct Family {
    MetricKind kind{MetricKind::kCounter};
    std::string help;
    // Indices into series_, ordered by serialized label key (deterministic
    // export order independent of creation order).
    std::vector<std::size_t> series;
    std::map<std::string, std::size_t> by_label_key;  // interning table
  };

  Series& intern(std::string_view family, MetricKind kind, MetricLabels&& labels,
                 std::string_view help, double lo, double hi, std::size_t bins);

  std::map<std::string, Family, std::less<>> families_;
  std::deque<Series> series_;
  std::deque<MetricCounter> counters_;  // deques: stable instrument addresses
  std::deque<MetricGauge> gauges_;
  std::deque<StreamingHistogram> histograms_;
};

// Serialize labels into the canonical interning key (sorted by label key,
// `k=v` joined with '\x1f').  Exposed for tests.
[[nodiscard]] std::string metric_label_key(const MetricLabels& labels);

}  // namespace rmacsim
