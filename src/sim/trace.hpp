// Lightweight structured trace facility.
//
// Protocol modules emit trace records (state transitions, frame events);
// a run installs a sink when it wants them (tests assert on traces, the
// frame_trace example pretty-prints them).  With no sink installed tracing
// is a branch and nothing more.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace rmacsim {

enum class TraceCategory : std::uint8_t {
  kPhy,
  kTone,
  kMac,
  kMacState,
  kNet,
  kApp,
};

[[nodiscard]] std::string_view to_string(TraceCategory c) noexcept;

struct TraceRecord {
  SimTime at;
  TraceCategory category;
  std::uint32_t node;
  std::string message;
};

class Tracer {
public:
  using Sink = std::function<void(const TraceRecord&)>;

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void clear_sink() { sink_ = nullptr; }
  [[nodiscard]] bool enabled() const noexcept { return static_cast<bool>(sink_); }

  void emit(SimTime at, TraceCategory category, std::uint32_t node, std::string message) const {
    if (sink_) sink_(TraceRecord{at, category, node, std::move(message)});
  }

private:
  Sink sink_;
};

}  // namespace rmacsim
