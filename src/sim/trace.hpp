// Lightweight structured trace facility.
//
// Protocol modules emit trace records (state transitions, frame events);
// a run installs one or more sinks when it wants them (tests assert on
// traces, the frame_trace example pretty-prints them, the SimAuditor checks
// protocol invariants against them).  With no sink installed tracing is a
// branch and nothing more.
//
// Records carry both a human-readable message and, for phy-level events, a
// machine-readable part (`event`, `frame`, `flag`, `aux`) so consumers never
// have to parse message strings.  `frame` is a forward-declared
// shared_ptr<const Frame>: sinks that need frame contents include
// phy/frame.hpp themselves, keeping sim/ below phy/ in the layering.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace rmacsim {

struct Frame;  // phy/frame.hpp

enum class TraceCategory : std::uint8_t {
  kPhy,
  kTone,
  kMac,
  kMacState,
  kNet,
  kApp,
};

[[nodiscard]] std::string_view to_string(TraceCategory c) noexcept;

// Machine-readable event kind for structured records.
enum class TraceEvent : std::uint8_t {
  kGeneric,  // message-only record (state changes, net/app notes)
  kTxStart,  // node started transmitting `frame`
  kTxEnd,    // node's transmission ended; flag = aborted (truncated on air)
  kFrameRx,  // an intact frame was decoded at node (regardless of addressing)
  kToneOn,   // node raised its tone; aux = tone kind; flag = suppressed
  kToneOff,  // node dropped its tone; aux = tone kind; flag = suppressed
};

[[nodiscard]] std::string_view to_string(TraceEvent e) noexcept;

// `aux` values for kToneOn/kToneOff records.
inline constexpr std::uint32_t kToneKindRbt = 0;
inline constexpr std::uint32_t kToneKindAbt = 1;
inline constexpr std::uint32_t kToneKindOther = 2;

struct TraceRecord {
  SimTime at;
  TraceCategory category;
  std::uint32_t node;
  std::string message;
  // --- structured part (meaningful when event != kGeneric) -----------------
  TraceEvent event{TraceEvent::kGeneric};
  std::shared_ptr<const Frame> frame{};  // kTxStart / kTxEnd / kFrameRx
  bool flag{false};                      // kTxEnd: aborted; tones: suppressed
  std::uint32_t aux{0};                  // tones: kToneKind*
};

class Tracer {
public:
  using Sink = std::function<void(const TraceRecord&)>;
  using SinkId = std::uint32_t;

  // Legacy single-sink interface: owns the dedicated slot 0, so tests that
  // call set_sink repeatedly replace their own sink without disturbing
  // long-lived subscribers (e.g. an attached auditor).
  void set_sink(Sink sink) {
    remove_sink(kPrimarySink);
    if (sink) sinks_.push_back({kPrimarySink, std::move(sink)});
  }
  void clear_sink() { remove_sink(kPrimarySink); }

  // Multi-sink interface.
  SinkId add_sink(Sink sink) {
    const SinkId id = next_id_++;
    sinks_.push_back({id, std::move(sink)});
    return id;
  }
  void remove_sink(SinkId id) noexcept {
    for (std::size_t i = 0; i < sinks_.size(); ++i) {
      if (sinks_[i].first == id) {
        sinks_.erase(sinks_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  [[nodiscard]] bool enabled() const noexcept { return !sinks_.empty(); }

  void emit(SimTime at, TraceCategory category, std::uint32_t node, std::string message) const {
    if (sinks_.empty()) return;
    dispatch(TraceRecord{at, category, node, std::move(message)});
  }

  // Structured emission; `record.event` et al. set by the caller.
  void emit(TraceRecord record) const {
    if (sinks_.empty()) return;
    dispatch(record);
  }

private:
  static constexpr SinkId kPrimarySink = 0;

  void dispatch(const TraceRecord& r) const {
    for (const auto& [id, sink] : sinks_) sink(r);
  }

  std::vector<std::pair<SinkId, Sink>> sinks_;
  SinkId next_id_{1};
};

}  // namespace rmacsim
