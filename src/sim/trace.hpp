// Lightweight structured trace facility.
//
// Protocol modules emit trace records (state transitions, frame events);
// a run installs one or more sinks when it wants them (tests assert on
// traces, the frame_trace example pretty-prints them, the SimAuditor checks
// protocol invariants against them).  With no sink installed tracing is a
// branch and nothing more.
//
// Records carry both a human-readable message and, for phy-level events, a
// machine-readable part (`event`, `frame`, `flag`, `aux`) so consumers never
// have to parse message strings.  `frame` is a forward-declared
// shared_ptr<const Frame>: sinks that need frame contents include
// phy/frame.hpp themselves, keeping sim/ below phy/ in the layering.
//
// Tracing is pay-for-what-you-read.  Each sink subscribes with a category
// mask and declares whether it reads `message`; hot emit sites pass a
// deferred formatter and the Tracer renders the string only when at least
// one subscribed sink asked for it.  Structured consumers (the SimAuditor,
// golden-trace digests) therefore run completely string-free, which is what
// makes always-on auditing affordable at paper scale.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "sim/ids.hpp"
#include "sim/time.hpp"

namespace rmacsim {

struct Frame;  // phy/frame.hpp

enum class TraceCategory : std::uint8_t {
  kPhy,
  kTone,
  kMac,
  kMacState,
  kNet,
  kApp,
};

[[nodiscard]] std::string_view to_string(TraceCategory c) noexcept;

// Machine-readable event kind for structured records.
enum class TraceEvent : std::uint8_t {
  kGeneric,  // message-only record (state changes, net/app notes)
  kTxStart,  // node started transmitting `frame`
  kTxEnd,    // node's transmission ended; flag = aborted (truncated on air)
  kFrameRx,  // an intact frame was decoded at node (regardless of addressing)
  kToneOn,   // node raised its tone; aux = tone kind; flag = suppressed
  kToneOff,  // node dropped its tone; aux = tone kind; flag = suppressed
  kMacState, // MAC state transition; aux = (from_state << 8) | to_state
  kDeliver,  // app-layer first delivery of a packet at node
};

[[nodiscard]] std::string_view to_string(TraceEvent e) noexcept;

// `aux` values for kToneOn/kToneOff records.
inline constexpr std::uint32_t kToneKindRbt = 0;
inline constexpr std::uint32_t kToneKindAbt = 1;
inline constexpr std::uint32_t kToneKindOther = 2;

struct TraceRecord {
  SimTime at;
  TraceCategory category;
  std::uint32_t node;
  // Human-readable text.  Lazily rendered: when the emit site supplies a
  // deferred formatter, `message` is empty unless a subscribed sink declared
  // needs_message for this record's category.
  std::string message;
  // --- structured part (meaningful when event != kGeneric) -----------------
  TraceEvent event{TraceEvent::kGeneric};
  std::shared_ptr<const Frame> frame{};  // kTxStart / kTxEnd / kFrameRx
  bool flag{false};                      // kTxEnd: aborted; tones: suppressed
  std::uint32_t aux{0};                  // tones: kToneKind*; kMacState: states
  // Journey of the packet this record concerns (flight recorder); mirrors
  // frame->journey on frame events so mask-only sinks needn't touch `frame`.
  JourneyId journey{kInvalidJourney};
};

class Tracer {
 public:
  using Sink = std::function<void(const TraceRecord&)>;
  using SinkId = std::uint32_t;
  using CategoryMask = std::uint32_t;

  [[nodiscard]] static constexpr CategoryMask bit(TraceCategory c) noexcept {
    return CategoryMask{1} << static_cast<unsigned>(c);
  }
  // One bit per TraceCategory enumerator (kPhy .. kApp).
  static constexpr CategoryMask kAllCategories = (CategoryMask{1} << 6) - 1;

  // Legacy single-sink interface: owns the dedicated slot 0, so tests that
  // call set_sink repeatedly replace their own sink without disturbing
  // long-lived subscribers (e.g. an attached auditor).  Subscribes to every
  // category with messages rendered — the pre-mask behaviour.
  void set_sink(Sink sink) {
    remove_sink(kPrimarySink);
    if (sink) add_entry(kPrimarySink, kAllCategories, /*needs_message=*/true, std::move(sink));
  }
  void clear_sink() { remove_sink(kPrimarySink); }

  // Multi-sink interface.  `categories` selects which records the sink
  // receives; a sink that only reads the structured fields passes
  // needs_message=false so hot emit sites can skip string formatting
  // entirely when nobody else wants the text.
  SinkId add_sink(Sink sink, CategoryMask categories = kAllCategories,
                  bool needs_message = true) {
    const SinkId id = next_id_++;
    add_entry(id, categories, needs_message, std::move(sink));
    return id;
  }
  // Safe to call from inside a sink callback during emit: the entry is
  // tombstoned (never invoked again, including for the record currently being
  // dispatched to later sinks) and physically erased once dispatch unwinds.
  void remove_sink(SinkId id) noexcept {
    for (Entry& e : sinks_) {
      if (e.id == id && e.sink) {
        e.id = kTombstone;
        e.sink = nullptr;
        if (dispatch_depth_ == 0) {
          compact();
        } else {
          pending_compact_ = true;
        }
        recompute_masks();
        return;
      }
    }
  }

  [[nodiscard]] bool enabled() const noexcept { return union_mask_ != 0; }

  // True when some sink subscribed to `c` — the emit-site guard.
  [[nodiscard]] bool wants(TraceCategory c) const noexcept {
    return (union_mask_ & bit(c)) != 0;
  }
  // True when some sink subscribed to `c` also reads `message`.
  [[nodiscard]] bool wants_message(TraceCategory c) const noexcept {
    return (message_mask_ & bit(c)) != 0;
  }

  void emit(SimTime at, TraceCategory category, std::uint32_t node, std::string message) const {
    if (!wants(category)) return;
    dispatch(TraceRecord{at, category, node, std::move(message)});
  }

  // Structured emission; `record.event` et al. set by the caller.
  void emit(TraceRecord record) const {
    if (!wants(record.category)) return;
    dispatch(record);
  }

  // Hot-path structured emission: `fmt()` renders the human-readable message
  // and runs only when a subscribed sink declared needs_message for this
  // category.  Callers still guard with wants() to skip building the record.
  template <typename Fmt>
  void emit(TraceRecord record, Fmt&& fmt) const {
    if (!wants(record.category)) return;
    if (wants_message(record.category)) record.message = std::forward<Fmt>(fmt)();
    dispatch(record);
  }

 private:
  struct Entry {
    SinkId id;
    CategoryMask mask;
    bool needs_message;
    Sink sink;  // nullptr = tombstone awaiting compaction
  };

  static constexpr SinkId kPrimarySink = 0;
  // Marks a tombstoned entry so a recycled SinkId can never match it.
  static constexpr SinkId kTombstone = std::numeric_limits<SinkId>::max();

  void add_entry(SinkId id, CategoryMask mask, bool needs_message, Sink sink) {
    sinks_.push_back(Entry{id, mask, needs_message, std::move(sink)});
    recompute_masks();
  }

  void recompute_masks() noexcept {
    union_mask_ = 0;
    message_mask_ = 0;
    for (const Entry& e : sinks_) {
      if (!e.sink) continue;
      union_mask_ |= e.mask;
      if (e.needs_message) message_mask_ |= e.mask;
    }
  }

  void compact() const noexcept {
    for (std::size_t i = sinks_.size(); i-- > 0;) {
      if (!sinks_[i].sink) sinks_.erase(sinks_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    pending_compact_ = false;
  }

  // Reentrancy contract: a sink callback may add or remove sinks (itself
  // included).  Entries live in a deque so appends never relocate the entry
  // whose std::function is currently executing; the size snapshot means a
  // sink added mid-dispatch first sees the *next* record (never a partial or
  // double delivery of this one); removal tombstones in place, so later
  // entries keep their positions and are each visited exactly once.
  void dispatch(const TraceRecord& r) const {
    const CategoryMask b = bit(r.category);
    ++dispatch_depth_;
    const std::size_t n = sinks_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Entry& e = sinks_[i];
      if (e.sink && (e.mask & b) != 0) e.sink(r);
    }
    if (--dispatch_depth_ == 0 && pending_compact_) compact();
  }

  mutable std::deque<Entry> sinks_;
  CategoryMask union_mask_{0};
  CategoryMask message_mask_{0};
  SinkId next_id_{1};
  mutable std::uint32_t dispatch_depth_{0};
  mutable bool pending_compact_{false};
};

}  // namespace rmacsim
