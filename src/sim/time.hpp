// Simulation time as a strongly-typed nanosecond count.
//
// The paper specifies all protocol timing in microseconds (slot = 20 us,
// CCA = 15 us, tau <= 1 us, ...); nanosecond resolution lets us represent
// sub-microsecond propagation delays (75 m range -> 0.25 us) exactly.
#pragma once

#include <cstdint>
#include <limits>
#include <ostream>

namespace rmacsim {

class SimTime {
public:
  constexpr SimTime() noexcept = default;

  [[nodiscard]] static constexpr SimTime ns(std::int64_t v) noexcept { return SimTime{v}; }
  [[nodiscard]] static constexpr SimTime us(std::int64_t v) noexcept { return SimTime{v * 1'000}; }
  [[nodiscard]] static constexpr SimTime ms(std::int64_t v) noexcept { return SimTime{v * 1'000'000}; }
  [[nodiscard]] static constexpr SimTime sec(std::int64_t v) noexcept { return SimTime{v * 1'000'000'000}; }

  // Fractional constructors for rate-derived intervals (e.g. 1/120 s).
  [[nodiscard]] static constexpr SimTime from_seconds(double s) noexcept {
    return SimTime{static_cast<std::int64_t>(s * 1e9)};
  }
  [[nodiscard]] static constexpr SimTime from_us(double us_val) noexcept {
    return SimTime{static_cast<std::int64_t>(us_val * 1e3)};
  }

  [[nodiscard]] static constexpr SimTime zero() noexcept { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() noexcept {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t nanoseconds() const noexcept { return ns_; }
  [[nodiscard]] constexpr double to_us() const noexcept { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double to_seconds() const noexcept { return static_cast<double>(ns_) / 1e9; }

  constexpr SimTime& operator+=(SimTime o) noexcept { ns_ += o.ns_; return *this; }
  constexpr SimTime& operator-=(SimTime o) noexcept { ns_ -= o.ns_; return *this; }

  [[nodiscard]] friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept { return SimTime{a.ns_ + b.ns_}; }
  [[nodiscard]] friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept { return SimTime{a.ns_ - b.ns_}; }
  [[nodiscard]] friend constexpr SimTime operator*(SimTime a, std::int64_t k) noexcept { return SimTime{a.ns_ * k}; }
  [[nodiscard]] friend constexpr SimTime operator*(std::int64_t k, SimTime a) noexcept { return SimTime{a.ns_ * k}; }
  [[nodiscard]] friend constexpr auto operator<=>(SimTime a, SimTime b) noexcept = default;

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.to_us() << "us";
  }

private:
  constexpr explicit SimTime(std::int64_t v) noexcept : ns_{v} {}
  std::int64_t ns_{0};
};

namespace literals {
[[nodiscard]] constexpr SimTime operator""_ns(unsigned long long v) noexcept {
  return SimTime::ns(static_cast<std::int64_t>(v));
}
[[nodiscard]] constexpr SimTime operator""_us(unsigned long long v) noexcept {
  return SimTime::us(static_cast<std::int64_t>(v));
}
[[nodiscard]] constexpr SimTime operator""_ms(unsigned long long v) noexcept {
  return SimTime::ms(static_cast<std::int64_t>(v));
}
[[nodiscard]] constexpr SimTime operator""_s(unsigned long long v) noexcept {
  return SimTime::sec(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace rmacsim
