#include "sim/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

#include "sim/strfmt.hpp"

namespace rmacsim {

namespace {

const std::string kEmptyString;
const JsonValue kNullValue;
const JsonValue::Array kEmptyArray;
const JsonValue::Object kEmptyObject;

}  // namespace

std::uint64_t JsonValue::as_u64(std::uint64_t fallback) const noexcept {
  if (!is_number()) return fallback;
  if (has_int_ && !int_negative_) return int_mag_;
  if (num_ < 0.0) return fallback;
  return static_cast<std::uint64_t>(num_);
}

std::int64_t JsonValue::as_i64(std::int64_t fallback) const noexcept {
  if (!is_number()) return fallback;
  if (has_int_) {
    if (int_negative_) {
      if (int_mag_ > static_cast<std::uint64_t>(INT64_MAX) + 1u) return fallback;
      return -static_cast<std::int64_t>(int_mag_ - 1u) - 1;
    }
    if (int_mag_ > static_cast<std::uint64_t>(INT64_MAX)) return fallback;
    return static_cast<std::int64_t>(int_mag_);
  }
  return static_cast<std::int64_t>(num_);
}

const std::string& JsonValue::as_string() const noexcept {
  return is_string() ? str_ : kEmptyString;
}

const JsonValue::Array& JsonValue::array() const noexcept {
  return is_array() && arr_ != nullptr ? *arr_ : kEmptyArray;
}

const JsonValue::Object& JsonValue::object() const noexcept {
  return is_object() && obj_ != nullptr ? *obj_ : kEmptyObject;
}

std::size_t JsonValue::size() const noexcept {
  if (is_array()) return array().size();
  if (is_object()) return object().size();
  return 0;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const noexcept {
  const JsonValue* v = find(key);
  return v != nullptr ? *v : kNullValue;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

// Recursive-descent parser.  Depth-capped so a hostile document cannot blow
// the stack (campaign cell records nest 4-5 levels).
class JsonParser {
public:
  JsonParser(std::string_view text, std::string* error) : text_{text}, error_{error} {}

  JsonValue run() {
    JsonValue v = value(0);
    if (failed_) return JsonValue{};
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing content after document");
      return JsonValue{};
    }
    return v;
  }

private:
  static constexpr int kMaxDepth = 64;

  void fail(const char* what) {
    if (!failed_ && error_ != nullptr) *error_ = cat("json: ", what, " at byte ", pos_);
    failed_ = true;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    fail("bad literal");
    return false;
  }

  JsonValue value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return JsonValue{};
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return JsonValue{};
    }
    const char c = text_[pos_];
    switch (c) {
      case '{': return object_value(depth);
      case '[': return array_value(depth);
      case '"': return string_value();
      case 't': {
        JsonValue v;
        if (literal("true")) {
          v.kind_ = JsonValue::Kind::kBool;
          v.bool_ = true;
        }
        return v;
      }
      case 'f': {
        JsonValue v;
        if (literal("false")) v.kind_ = JsonValue::Kind::kBool;
        return v;
      }
      case 'n': {
        (void)literal("null");
        return JsonValue{};
      }
      default: return number_value();
    }
  }

  JsonValue string_value() {
    JsonValue v;
    std::string s;
    if (!parse_string(s)) return v;
    v.kind_ = JsonValue::Kind::kString;
    v.str_ = std::move(s);
    return v;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) {
      fail("expected string");
      return false;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') {
                cp |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                cp |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                cp |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape");
                return false;
              }
            }
            // UTF-8 encode the BMP code point (exporters only escape
            // control characters, so surrogate pairs never appear in our
            // own documents; lone surrogates pass through as-is bytes).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape");
            return false;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return false;
  }

  JsonValue number_value() {
    JsonValue v;
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") {
      fail("expected value");
      return v;
    }
    double d = 0.0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc{} || p != tok.data() + tok.size()) {
      fail("bad number");
      return v;
    }
    v.kind_ = JsonValue::Kind::kNumber;
    v.num_ = d;
    // Preserve exact 64-bit integers: counters can exceed 2^53.
    if (integral) {
      std::string_view mag = tok;
      v.int_negative_ = !mag.empty() && mag.front() == '-';
      if (v.int_negative_) mag.remove_prefix(1);
      std::uint64_t u = 0;
      const auto [mp, mec] = std::from_chars(mag.data(), mag.data() + mag.size(), u);
      if (mec == std::errc{} && mp == mag.data() + mag.size()) {
        v.has_int_ = true;
        v.int_mag_ = u;
      }
    }
    return v;
  }

  JsonValue array_value(int depth) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    v.arr_ = std::make_shared<JsonValue::Array>();
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return v;
    while (!failed_) {
      v.arr_->push_back(value(depth + 1));
      if (failed_) break;
      skip_ws();
      if (consume(']')) return v;
      if (!consume(',')) {
        fail("expected ',' or ']'");
        break;
      }
    }
    return JsonValue{};
  }

  JsonValue object_value(int depth) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    v.obj_ = std::make_shared<JsonValue::Object>();
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return v;
    while (!failed_) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) break;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':'");
        break;
      }
      JsonValue member = value(depth + 1);
      if (failed_) break;
      // First key wins; exporters never emit duplicates.
      if (v.find(key) == nullptr) v.obj_->emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (consume('}')) return v;
      if (!consume(',')) {
        fail("expected ',' or '}'");
        break;
      }
    }
    return JsonValue{};
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_{0};
  bool failed_{false};
};

JsonValue JsonValue::parse(std::string_view text, std::string* error) {
  return JsonParser{text, error}.run();
}

}  // namespace rmacsim
