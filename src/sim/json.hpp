// Minimal self-contained JSON reader for the campaign layer.
//
// The simulator's exporters *write* JSON through BufWriter (sim/bufio.hpp);
// the campaign orchestrator also has to *read* it — worker result frames,
// cached cell records, and sweep specs all arrive as JSON text from another
// process or from disk.  The container ships no third-party JSON library, so
// this is a small recursive-descent parser over an owning document value.
//
// Scope is deliberately narrow: UTF-8 text, doubles for numbers (with the
// exact unsigned/signed value preserved when the token is integral, so
// 64-bit event counters survive a round trip), objects as insertion-ordered
// key/value vectors (duplicate keys keep the first).  Nothing here touches
// the simulation hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rmacsim {

class JsonValue {
public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;

  // Parse one complete JSON document (trailing whitespace allowed, anything
  // else after the value is an error).  On failure returns a kNull value and
  // fills `error` (if non-null) with a byte-offset diagnostic.
  [[nodiscard]] static JsonValue parse(std::string_view text, std::string* error = nullptr);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }

  // Typed accessors; out-of-kind access returns the fallback, never throws —
  // campaign code validates shape once and then reads fields permissively.
  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0.0) const noexcept {
    return is_number() ? num_ : fallback;
  }
  // Exact when the source token was integral (no '.', no exponent); numbers
  // parsed as doubles otherwise round through the double.
  [[nodiscard]] std::uint64_t as_u64(std::uint64_t fallback = 0) const noexcept;
  [[nodiscard]] std::int64_t as_i64(std::int64_t fallback = 0) const noexcept;
  [[nodiscard]] const std::string& as_string() const noexcept;

  [[nodiscard]] const Array& array() const noexcept;
  [[nodiscard]] const Object& object() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept;

  // Object member lookup (linear; campaign documents keep objects small).
  // Returns nullptr when absent or when this value is not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
  // find() that tolerates a missing member by yielding a shared null.
  [[nodiscard]] const JsonValue& at(std::string_view key) const noexcept;

  // Construction helpers for tests.
  [[nodiscard]] static JsonValue make_string(std::string s);
  [[nodiscard]] static JsonValue make_number(double v);

private:
  Kind kind_{Kind::kNull};
  bool bool_{false};
  double num_{0.0};
  // Set when the numeric token was integral and fits: exact 64-bit mirror.
  bool has_int_{false};
  bool int_negative_{false};
  std::uint64_t int_mag_{0};
  std::string str_;
  // Indirect so JsonValue stays movable/copyable without recursive layout.
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;

  friend class JsonParser;
};

}  // namespace rmacsim
