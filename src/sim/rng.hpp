// Deterministic random number generation.
//
// xoshiro256** seeded via splitmix64; every consumer of randomness gets its
// own named stream derived from (master seed, stream id) so that adding a
// new consumer never perturbs the draws seen by existing ones — a
// prerequisite for reproducible experiment sweeps.
#pragma once

#include <cstdint>
#include <string_view>

namespace rmacsim {

class Rng {
public:
  explicit Rng(std::uint64_t seed) noexcept;
  Rng(std::uint64_t master_seed, std::uint64_t stream) noexcept;

  // Raw 64 random bits.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  // Uniform in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  // Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  // Uniform integer in [0, bound), bias-free (Lemire rejection).
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t bound) noexcept;

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  // Exponentially distributed with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  // True with probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  // Derive an independent child stream; used to hand sub-streams to nodes.
  [[nodiscard]] Rng fork(std::uint64_t salt) noexcept;

  // Stable 64-bit hash of a label, for deriving stream ids from names.
  [[nodiscard]] static std::uint64_t hash_label(std::string_view label) noexcept;

private:
  std::uint64_t s_[4];
};

}  // namespace rmacsim
