// Conservative window-barrier executor for spatially sharded simulations.
//
// The engine alternates two phases:
//
//   plan    (serial)   — exchange cross-shard messages accumulated during
//                        the previous window and pick the next barrier time;
//   advance (parallel) — every shard runs its own Scheduler to the barrier.
//
// The caller owns all sharding semantics (message routing, merge order,
// lookahead); this class owns only the thread pool and the barrier protocol,
// so it can be tested in isolation and reused by any shard-shaped workload.
//
// The pool is persistent: workers are spawned once (lazily, on the first
// parallel run) and parked on a condition variable between windows, so a run
// with tens of thousands of sub-millisecond windows pays one notify/wait
// round-trip per window instead of a thread spawn + join.  run() is
// repeatable — the sharded engine calls it once per run_until() span
// (warmup, measurement, drain) against the same pool.
//
// Determinism: shards — not threads — are the unit of work.  Worker w always
// owns shards {w, w+T, w+2T, ...} and shards never share mutable state, so
// the thread count can only change wall-clock time, never results.  The
// shard→worker map is fixed at construction, which keeps each shard's
// working set resident on the same core (and NUMA node, when pinned) across
// every window of the run.
//
// Exceptions: a throw from advance() stops the run after the current window;
// the first failure in shard-index order is rethrown from run() after the
// window barrier (same contract as scenario/parallel_runner).  The pool
// survives a throw and can run again.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/time.hpp"

namespace rmacsim {

class WindowExecutor {
public:
  // `plan` returns the next barrier time, or SimTime::max() to stop.
  // `advance(shard, until)` advances one shard; called concurrently for
  // distinct shards, never concurrently for the same shard.
  using PlanFn = std::function<SimTime()>;
  using AdvanceFn = std::function<void(std::size_t shard, SimTime until)>;
  // Runs on a pool thread at the start of every window it works, before any
  // advance() call — the seam for per-thread setup such as profiler
  // attachment (idempotent; a thread-local store per window is noise next to
  // advancing a shard).
  using WorkerHook = std::function<void(unsigned worker)>;

  // `threads` is a request: 0 means one thread per shard; the effective
  // count is clamped to [1, shards].  threads() reports the resolution.
  // `pin_workers` requests best-effort CPU affinity (worker w → CPU
  // w % hardware_concurrency on Linux; a no-op elsewhere or on failure),
  // keeping the shard→worker→core placement stable for cache and NUMA
  // locality.
  WindowExecutor(std::size_t shards, unsigned threads, PlanFn plan, AdvanceFn advance,
                 bool pin_workers = false);
  ~WindowExecutor();

  WindowExecutor(const WindowExecutor&) = delete;
  WindowExecutor& operator=(const WindowExecutor&) = delete;

  // Install/replace the per-window worker hook.  Call only between runs.
  void set_worker_hook(WorkerHook hook) { hook_ = std::move(hook); }

  // Per-window wall-clock timing (window telemetry).  When enabled, the
  // executor records for the most recent window: each worker's execute span
  // (work publication to its barrier arrival), its barrier stall (arrival to
  // the last worker's arrival), and the uniform parked span before the
  // window (the serial plan phase).  Totals live in WindowTelemetry; this
  // class only keeps the last window so the plan phase of window k+1 can
  // read window k's spans — the barrier handshake orders those reads.  Costs
  // a few steady_clock reads per window; off by default.  Call only between
  // runs.
  void set_collect_timing(bool on) noexcept { collect_ = on; }
  [[nodiscard]] const std::vector<std::uint64_t>& last_execute_ns() const noexcept {
    return last_exec_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& last_stall_ns() const noexcept {
    return last_stall_;
  }
  [[nodiscard]] std::uint64_t last_wait_ns() const noexcept { return last_wait_ns_; }

  void run();

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }
  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }
  [[nodiscard]] bool pinning_requested() const noexcept { return pin_; }

private:
  void run_serial();
  void run_parallel();
  void start_pool();
  void worker_main(unsigned w);
  void dispatch_window(SimTime barrier);

  std::size_t shards_;
  unsigned threads_;
  PlanFn plan_;
  AdvanceFn advance_;
  WorkerHook hook_;
  bool pin_;
  bool collect_{false};
  std::uint64_t windows_{0};

  // Timing state (valid only while collect_): per-worker spans of the last
  // window plus the wall instant the previous window (or run) ended.
  // Workers write arrive_ns_[w] before taking the arrival lock; the main
  // thread reads after the cv_done_ wakeup, so the mutex orders every pair.
  std::vector<std::uint64_t> arrive_ns_;
  std::vector<std::uint64_t> last_exec_;
  std::vector<std::uint64_t> last_stall_;
  std::uint64_t last_wait_ns_{0};
  std::uint64_t idle_from_ns_{0};

  // Generation-counter barrier.  The main thread publishes barrier_time_ and
  // bumps generation_ under the mutex; workers wake on cv_work_, advance
  // their shards, and the last arrival signals cv_done_.  One mutex, two
  // condvars, zero allocations per window.
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_{0};
  unsigned arrived_{0};
  bool stop_{false};
  SimTime barrier_time_{SimTime::zero()};
  // One slot per shard: a worker never writes another worker's slots, and
  // the arrival handshake orders every write against the main thread's reads.
  std::vector<std::exception_ptr> errors_;
  std::vector<std::thread> pool_;
};

}  // namespace rmacsim
