// Conservative window-barrier executor for spatially sharded simulations.
//
// The engine alternates two phases:
//
//   plan    (serial)   — exchange cross-shard messages accumulated during
//                        the previous window and pick the next barrier time;
//   advance (parallel) — every shard runs its own Scheduler to the barrier.
//
// The caller owns all sharding semantics (message routing, merge order,
// lookahead); this class owns only the thread pool and the barrier protocol,
// so it can be tested in isolation and reused by any shard-shaped workload.
//
// Determinism: shards — not threads — are the unit of work.  Worker w always
// owns shards {w, w+T, w+2T, ...} and shards never share mutable state, so
// the thread count can only change wall-clock time, never results.
//
// Exceptions: a throw from advance() stops the run after the current window;
// the first failure in shard-index order is rethrown from run() after all
// workers joined (same contract as scenario/parallel_runner).
#pragma once

#include <cstddef>
#include <functional>

#include "sim/time.hpp"

namespace rmacsim {

class WindowExecutor {
public:
  // `plan` returns the next barrier time, or SimTime::max() to stop.
  // `advance(shard, until)` advances one shard; called concurrently for
  // distinct shards, never concurrently for the same shard.
  using PlanFn = std::function<SimTime()>;
  using AdvanceFn = std::function<void(std::size_t shard, SimTime until)>;

  // `threads` is a request: 0 means one thread per shard; the effective
  // count is clamped to [1, shards].  threads() reports the resolution.
  WindowExecutor(std::size_t shards, unsigned threads, PlanFn plan, AdvanceFn advance);

  void run();

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }
  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }

private:
  void run_serial();
  void run_parallel();

  std::size_t shards_;
  unsigned threads_;
  PlanFn plan_;
  AdvanceFn advance_;
  std::uint64_t windows_{0};
};

}  // namespace rmacsim
