// Node identifiers shared by every layer.
#pragma once

#include <cstdint>
#include <limits>

namespace rmacsim {

using NodeId = std::uint32_t;

// Reserved destination id meaning "all one-hop neighbours".
inline constexpr NodeId kBroadcastId = std::numeric_limits<NodeId>::max();
inline constexpr NodeId kInvalidNode = kBroadcastId - 1;

// ---------------------------------------------------------------------------
// Journey identifiers (flight recorder, src/obs/).
//
// Every application packet is assigned a JourneyId at creation; the id rides
// on the AppPacket and on every frame of every MAC exchange that moves the
// packet (data frames via their payload pointer, control frames explicitly),
// so an observer can reconstruct the packet's full multi-hop story from
// trace records alone.  The id packs the origin-scoped identity so it is
// stable across runs of the same seed and needs no central allocator:
//
//   bit 63     : 1 for routing hellos, 0 for application data
//   bits 62-32 : origin NodeId + 1 (so a valid journey is never 0)
//   bits 31-0  : origin-scoped sequence number
using JourneyId = std::uint64_t;

inline constexpr JourneyId kInvalidJourney = 0;

[[nodiscard]] constexpr JourneyId make_journey(NodeId origin, std::uint32_t seq,
                                               bool hello = false) noexcept {
  return (hello ? (JourneyId{1} << 63) : JourneyId{0}) |
         ((static_cast<JourneyId>(origin) + 1) & 0x7fffffffu) << 32 | seq;
}
[[nodiscard]] constexpr NodeId journey_origin(JourneyId j) noexcept {
  return static_cast<NodeId>(((j >> 32) & 0x7fffffffu) - 1);
}
[[nodiscard]] constexpr std::uint32_t journey_seq(JourneyId j) noexcept {
  return static_cast<std::uint32_t>(j);
}
[[nodiscard]] constexpr bool journey_is_hello(JourneyId j) noexcept { return (j >> 63) != 0; }

}  // namespace rmacsim
