// Node identifiers shared by every layer.
#pragma once

#include <cstdint>
#include <limits>

namespace rmacsim {

using NodeId = std::uint32_t;

// Reserved destination id meaning "all one-hop neighbours".
inline constexpr NodeId kBroadcastId = std::numeric_limits<NodeId>::max();
inline constexpr NodeId kInvalidNode = kBroadcastId - 1;

}  // namespace rmacsim
