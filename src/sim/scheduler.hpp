// Discrete-event scheduler: the beating heart of the simulator.
//
// A binary heap of (time, sequence) ordered events with O(log n)
// schedule/pop and O(1) cancellation (lazy deletion).  Ties at equal
// timestamps are broken by scheduling order, which makes every run fully
// deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace rmacsim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Scheduler {
public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Schedule `fn` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(SimTime at, std::function<void()> fn);

  // Schedule `fn` to run `delay` after now().
  EventId schedule_in(SimTime delay, std::function<void()> fn);

  // Cancel a pending event. Returns true if it was still pending.
  bool cancel(EventId id) noexcept;

  [[nodiscard]] bool pending(EventId id) const noexcept;

  // Time of the next pending event, or SimTime::max() if none.
  [[nodiscard]] SimTime next_event_time() const noexcept;

  // Run events until the queue is empty or `until` is passed; advances
  // now() to `until` on return unless the queue drained earlier.
  void run_until(SimTime until);

  // Run everything.
  void run();

  // Execute at most one event; returns false if the queue was empty.
  bool step();

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending_count() const noexcept { return live_.size(); }
  [[nodiscard]] std::uint64_t executed_count() const noexcept { return executed_; }

private:
  struct Entry {
    SimTime at;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const std::unique_ptr<Entry>& a, const std::unique_ptr<Entry>& b) const noexcept {
      if (a->at != b->at) return a->at > b->at;
      return a->id > b->id;  // FIFO among equal timestamps
    }
  };

  SimTime now_{SimTime::zero()};
  EventId next_id_{1};
  std::uint64_t executed_{0};
  std::priority_queue<std::unique_ptr<Entry>, std::vector<std::unique_ptr<Entry>>, Later> heap_;
  std::unordered_map<EventId, Entry*> live_;
};

}  // namespace rmacsim
