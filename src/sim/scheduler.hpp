// Discrete-event scheduler: the beating heart of the simulator.
//
// Events live in a slab-allocated pool (a vector of slots recycled through a
// free list) and are ordered by a 4-ary heap of plain {time, seq, slot}
// nodes, so the schedule/execute cycle performs no per-event heap
// allocation: callbacks are stored in an SBO callable (EventFn) inside the
// slab, and cancel/pending are O(1) array probes with no hashing.
//
// An EventId encodes {slot, generation}: the generation is bumped every time
// a slot is released (executed or cancelled), so a stale id held across a
// slot reuse is rejected instead of acting on the wrong event.  Ties at
// equal timestamps are broken by a monotonic scheduling sequence number,
// which makes every run fully deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace rmacsim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Scheduler {
public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Schedule `fn` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(SimTime at, EventFn fn);

  // Schedule `fn` to run `delay` after now().
  EventId schedule_in(SimTime delay, EventFn fn);

  // Cancel a pending event. Returns true if it was still pending.
  bool cancel(EventId id) noexcept;

  [[nodiscard]] bool pending(EventId id) const noexcept;

  // Time of the next pending event, or SimTime::max() if none.
  [[nodiscard]] SimTime next_event_time() const noexcept;

  // Run events until the queue is empty or `until` is passed; advances
  // now() to `until` on return unless the queue drained earlier.
  void run_until(SimTime until);

  // Run everything.
  void run();

  // Execute at most one event; returns false if the queue was empty.
  bool step();

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending_count() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t executed_count() const noexcept { return executed_; }
  // Lifetime totals and pool introspection for the metrics registry.
  [[nodiscard]] std::uint64_t scheduled_count() const noexcept { return scheduled_; }
  [[nodiscard]] std::uint64_t cancelled_count() const noexcept { return cancelled_; }
  [[nodiscard]] std::size_t peak_pending() const noexcept { return peak_live_; }
  [[nodiscard]] std::size_t pool_slots() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t pool_free_slots() const noexcept { return free_slots_.size(); }

private:
  struct Slot {
    EventFn fn;
    std::uint32_t generation{0};
    bool active{false};
  };
  // Self-contained ordering key: popping never touches the slab until the
  // node wins, and stale nodes (generation mismatch) are skipped lazily.
  struct HeapNode {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };

  [[nodiscard]] static constexpr EventId encode(std::uint32_t slot,
                                                std::uint32_t generation) noexcept {
    // slot+1 in the high word keeps every valid id distinct from kInvalidEvent.
    return (static_cast<EventId>(slot) + 1) << 32 | generation;
  }
  [[nodiscard]] static constexpr std::uint32_t slot_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32) - 1;
  }
  [[nodiscard]] static constexpr std::uint32_t generation_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id);
  }

  [[nodiscard]] static bool later(const HeapNode& a, const HeapNode& b) noexcept {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;  // FIFO among equal timestamps
  }

  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  void pop_heap_node() noexcept;
  // Remove stale (cancelled/executed) nodes from the top of the heap.
  void drop_stale_tops() noexcept;
  void release_slot(std::uint32_t slot) noexcept;

  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{1};
  std::uint64_t executed_{0};
  std::uint64_t scheduled_{0};
  std::uint64_t cancelled_{0};
  std::size_t live_{0};
  std::size_t peak_live_{0};
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapNode> heap_;
};

}  // namespace rmacsim
