// Discrete-event scheduler: the beating heart of the simulator.
//
// Events live in a slab-allocated pool (a vector of slots recycled through a
// free list), so the schedule/execute cycle performs no per-event heap
// allocation: callbacks are stored in an SBO callable (EventFn) inside the
// slab, and cancel/pending are O(1) array probes with no hashing.
//
// Ordering uses a two-level timing wheel.  Events within the near horizon
// (kBucketCount ticks of 2^kBucketShiftBits ns each, ~8.4 ms — which covers
// every propagation edge, frame airtime, and MAC timer the protocol stack
// produces) go into a calendar ring: insertion is an O(1) append to the
// bucket for the event's tick, and a bucket is sorted by (time, seq) once
// when the cursor reaches it.  That replaces the per-event sift-up /
// sift-down of a comparison heap with one small sort per bucket — the
// dominant simulator pattern, a transmission fanning out to dozens of
// receivers, lands all its begin/end edges in one or two buckets.  Bucket
// storage is chunked: nodes live in fixed-size chunks drawn from a shared
// recycled pool, so the ring's working set is proportional to the *pending*
// event count (a few cache lines, reused every tick), not to the bucket
// count, and steady state allocates nothing.
//
// Events beyond the horizon (periodic traffic, hello timers) overflow into
// a 4-ary heap.  When the next due tick has only heap content, events are
// served straight off the heap — one pop each, exactly what they cost
// before the ring existed; heap events sharing a tick with ring content are
// merged into the bucket ahead of its sort, preserving the global order.
//
// An EventId encodes {slot, generation}: the generation is bumped every time
// a slot is released (executed or cancelled), so a stale id held across a
// slot reuse is rejected instead of acting on the wrong event.  Cancelled
// events leave tombstone nodes behind; the executor generation-checks each
// node and skips the dead ones lazily.  Ties at equal timestamps are broken
// by a monotonic scheduling sequence number, which makes every run fully
// deterministic for a fixed seed: the wheel replays exactly the (time, seq)
// order a global priority queue would produce — mid-bucket schedules at the
// current timestamp still run inside the tick (their seq is higher than
// anything already consumed), and mid-bucket cancels of not-yet-run events
// still take effect.
#pragma once

#include <array>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace rmacsim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Scheduler {
public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Schedule `fn` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(SimTime at, EventFn fn);

  // Schedule `fn` to run `delay` after now().
  EventId schedule_in(SimTime delay, EventFn fn);

  // Callable overloads: the capture is constructed directly in the event
  // slot (no EventFn temporary, no relocate per event) — the form every hot
  // caller hits when passing a lambda.
  template <typename F, typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn>>>
  EventId schedule_at(SimTime at, F&& f) {
    return emplace_event(at, std::forward<F>(f), false);
  }
  template <typename F, typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn>>>
  EventId schedule_in(SimTime delay, F&& f) {
    return emplace_event(now_ + delay, std::forward<F>(f), false);
  }

  // Bulk insertion: a BulkInsert appends far-horizon heap nodes without
  // per-insert sifting and restores the heap invariant once on destruction
  // (near-horizon ring inserts are O(1) appends already).  Seq assignment,
  // EventIds, counters, and the eventual execution order are identical to a
  // sequence of schedule_at calls.  While a BulkInsert is live the far-heap
  // invariant is suspended: do not run, step, or read next_event_time until
  // it is destroyed (cancel/pending are fine — they never look at the
  // queue).
  class BulkInsert {
  public:
    explicit BulkInsert(Scheduler& s) noexcept : s_{s}, mark_{s.heap_.size()} {}
    BulkInsert(const BulkInsert&) = delete;
    BulkInsert& operator=(const BulkInsert&) = delete;
    ~BulkInsert() { s_.finish_bulk(mark_); }

    EventId at(SimTime at, EventFn fn) { return s_.insert_event(at, std::move(fn), true); }
    EventId in(SimTime delay, EventFn fn) {
      return s_.insert_event(s_.now_ + delay, std::move(fn), true);
    }
    template <typename F, typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn>>>
    EventId at(SimTime at, F&& f) {
      return s_.emplace_event(at, std::forward<F>(f), true);
    }
    template <typename F, typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn>>>
    EventId in(SimTime delay, F&& f) {
      return s_.emplace_event(s_.now_ + delay, std::forward<F>(f), true);
    }

  private:
    Scheduler& s_;
    std::size_t mark_;
  };

  // Cancel a pending event. Returns true if it was still pending.
  bool cancel(EventId id) noexcept;

  [[nodiscard]] bool pending(EventId id) const noexcept;

  // Time of the next pending event, or SimTime::max() if none.  A cancelled
  // event's tombstone may still be reported (it bounds the next live event's
  // time from below); the run loops do the authoritative skipping.
  [[nodiscard]] SimTime next_event_time() const noexcept;

  // Run events until the queue is empty or `until` is passed; advances
  // now() to `until` on return unless the queue drained earlier.
  void run_until(SimTime until);

  // Run everything.
  void run();

  // Execute at most one event; returns false if the queue was empty.
  bool step();

  // Batched bucket drain in run()/run_until() (default on): the due bucket
  // is swept in a tight loop instead of re-deriving the global next event
  // per entry.  The toggle exists so tests can prove batched and per-event
  // execution are bit-identical; there is no semantic reason to turn it off.
  void set_batch_dispatch(bool on) noexcept { batch_dispatch_ = on; }
  [[nodiscard]] bool batch_dispatch() const noexcept { return batch_dispatch_; }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending_count() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t executed_count() const noexcept { return executed_; }
  // Lifetime totals and pool introspection for the metrics registry.
  [[nodiscard]] std::uint64_t scheduled_count() const noexcept { return scheduled_; }
  [[nodiscard]] std::uint64_t cancelled_count() const noexcept { return cancelled_; }
  [[nodiscard]] std::size_t peak_pending() const noexcept { return peak_live_; }
  [[nodiscard]] std::size_t pool_slots() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t pool_free_slots() const noexcept { return free_slots_.size(); }

private:
  // Ring geometry: 4096 ticks x 2048 ns = ~8.4 ms near horizon.  Wide
  // enough that a maximum-length data frame's trailing edge (airtime ~6 ms
  // at 2 Mb/s) still lands in the ring; narrow enough that a broadcast
  // fan-out's propagation spread (a few us) fills only a couple of buckets.
  static constexpr std::size_t kBucketShiftBits = 11;
  static constexpr std::size_t kBucketCount = 4096;
  static constexpr std::size_t kBucketMask = kBucketCount - 1;
  static constexpr std::size_t kBitWords = kBucketCount / 64;
  static constexpr std::uint32_t kNoChunk = 0xffffffffu;

  struct Slot {
    EventFn fn;
    std::uint32_t generation{0};
    bool active{false};
  };
  // Self-contained ordering key: draining never touches the slab until the
  // node wins, and stale nodes (generation mismatch) are skipped lazily.
  struct HeapNode {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  // Bucket storage unit: a cache-line-multiple block of nodes linked into a
  // per-bucket list and recycled through chunk_free_.
  struct Chunk {
    static constexpr std::size_t kNodes = 14;
    std::array<HeapNode, kNodes> nodes;
    std::uint32_t count;
    std::uint32_t next;
  };

  [[nodiscard]] static constexpr EventId encode(std::uint32_t slot,
                                                std::uint32_t generation) noexcept {
    // slot+1 in the high word keeps every valid id distinct from kInvalidEvent.
    return (static_cast<EventId>(slot) + 1) << 32 | generation;
  }
  [[nodiscard]] static constexpr std::uint32_t slot_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32) - 1;
  }
  [[nodiscard]] static constexpr std::uint32_t generation_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id);
  }

  [[nodiscard]] static bool later(const HeapNode& a, const HeapNode& b) noexcept {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;  // FIFO among equal timestamps
  }
  [[nodiscard]] static bool earlier(const HeapNode& a, const HeapNode& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }
  [[nodiscard]] static constexpr std::int64_t tick_of(SimTime at) noexcept {
    return at.nanoseconds() >> kBucketShiftBits;
  }

  // Shared slot-acquire + ring/heap routing behind schedule_at and
  // BulkInsert; `bulk` suppresses the far-heap sift-up (finish_bulk
  // re-establishes the invariant for everything appended past `mark`).
  EventId insert_event(SimTime at, EventFn fn, bool bulk);
  // In-place variant: acquire the slot first, construct the capture inside
  // it, then route the queue node — identical semantics, no EventFn moves.
  template <typename F>
  EventId emplace_event(SimTime at, F&& f, bool bulk) {
    const std::uint32_t slot = acquire_event_slot();
    slots_[slot].fn.emplace(std::forward<F>(f));
    return commit_event(at, slot, bulk);
  }
  [[nodiscard]] std::uint32_t acquire_event_slot();
  EventId commit_event(SimTime at, std::uint32_t slot, bool bulk);
  void finish_bulk(std::size_t mark) noexcept;
  // Append `node` to its ring bucket (clamped to the cursor bucket if its
  // tick is behind the cursor — only possible after tombstone-only
  // consumption, and the (at, seq) bucket sort restores the exact order).
  void ring_insert(const HeapNode& node);
  // Move the chunks of bucket `idx` (plus any far-heap nodes sharing the
  // cursor tick) into active_ and release them to the chunk free list.
  void collect_bucket(std::size_t idx);
  // Position the wheel on the next node in global (at, seq) order; returns
  // false if none exists with at <= limit.  On true, the node (possibly a
  // tombstone) is active_[bucket_pos_] — or the far-heap front when
  // serving_heap_ is set (a due tick with no ring content).
  bool position_next(SimTime limit);
  // Consume the positioned node; returns true if a live event executed
  // (false: tombstone skipped).
  bool execute_front();
  bool execute_heap_front();
  // Consume every due node of the active bucket in one sweep.
  void sweep_bucket(SimTime limit);
  [[nodiscard]] std::int64_t next_ring_tick() const noexcept;

  void set_bit(std::size_t idx) noexcept { ring_bits_[idx >> 6] |= 1ull << (idx & 63); }
  void clear_bit(std::size_t idx) noexcept { ring_bits_[idx >> 6] &= ~(1ull << (idx & 63)); }

  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  void pop_heap_node() noexcept;
  // Remove stale (cancelled/executed) nodes from the top of the far heap.
  void drop_stale_tops() noexcept;
  void release_slot(std::uint32_t slot) noexcept;

  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{1};
  std::uint64_t executed_{0};
  std::uint64_t scheduled_{0};
  std::uint64_t cancelled_{0};
  std::size_t live_{0};
  std::size_t peak_live_{0};
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  // Calendar ring: bucket i holds the chunks of the unique tick in
  // [cursor_tick_, cursor_tick_ + kBucketCount) congruent to i; ring_bits_
  // marks buckets with chunks.
  std::vector<std::uint32_t> bucket_head_ = std::vector<std::uint32_t>(kBucketCount, kNoChunk);
  std::vector<std::uint32_t> bucket_tail_ = std::vector<std::uint32_t>(kBucketCount, kNoChunk);
  std::array<std::uint64_t, kBitWords> ring_bits_{};
  std::vector<Chunk> chunks_;
  std::vector<std::uint32_t> chunk_free_;
  std::size_t ring_nodes_{0};  // nodes currently stored in chunks
  std::int64_t cursor_tick_{0};
  // The bucket under the cursor, collected into one scratch vector (capacity
  // persists across ticks) and consumed front to back.
  std::vector<HeapNode> active_;
  std::size_t bucket_pos_{0};     // consumed prefix of active_
  std::size_t bucket_sorted_{0};  // active_ size at the last sort
  bool serving_heap_{false};      // position_next parked on the far heap
  // Far-horizon overflow heap (4-ary).
  std::vector<HeapNode> heap_;
  bool batch_dispatch_{true};
};

}  // namespace rmacsim
