#include "sim/rng.hpp"

#include <cmath>

namespace rmacsim {

namespace {

constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : Rng{seed, 0} {}

Rng::Rng(std::uint64_t master_seed, std::uint64_t stream) noexcept {
  // Mix the stream id into the seeding chain so streams are independent.
  std::uint64_t sm = master_seed ^ (stream * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);
  for (auto& w : s_) w = splitmix64(sm);
  // xoshiro must not be seeded with all zeros.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Rng Rng::fork(std::uint64_t salt) noexcept {
  return Rng{next_u64(), salt};
}

std::uint64_t Rng::hash_label(std::string_view label) noexcept {
  // FNV-1a, folded through splitmix for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}

}  // namespace rmacsim
