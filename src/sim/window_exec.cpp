#include "sim/window_exec.hpp"

#include <algorithm>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace rmacsim {

namespace {

void pin_to_cpu(unsigned worker) {
#ifdef __linux__
  const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(worker % ncpu, &set);
  // Best-effort: containers and cgroup cpusets may reject the mask, and an
  // unpinned worker is merely slower, never wrong.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)worker;
#endif
}

}  // namespace

WindowExecutor::WindowExecutor(std::size_t shards, unsigned threads, PlanFn plan,
                               AdvanceFn advance, bool pin_workers)
    : shards_{shards},
      threads_{static_cast<unsigned>(std::clamp<std::size_t>(
          threads == 0 ? shards : threads, 1, shards))},
      plan_{std::move(plan)},
      advance_{std::move(advance)},
      pin_{pin_workers},
      errors_(shards) {}

WindowExecutor::~WindowExecutor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : pool_) t.join();
}

void WindowExecutor::run() {
  if (threads_ == 1) {
    run_serial();
  } else {
    run_parallel();
  }
}

void WindowExecutor::run_serial() {
  for (;;) {
    const SimTime barrier = plan_();
    if (barrier == SimTime::max()) return;
    ++windows_;
    if (hook_) hook_(0);
    for (std::size_t s = 0; s < shards_; ++s) advance_(s, barrier);
  }
}

void WindowExecutor::start_pool() {
  if (!pool_.empty()) return;
  pool_.reserve(threads_);
  for (unsigned w = 0; w < threads_; ++w) {
    pool_.emplace_back([this, w] { worker_main(w); });
  }
}

void WindowExecutor::worker_main(unsigned w) {
  if (pin_) pin_to_cpu(w);
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    // barrier_time_ was published under mu_ before the generation bump and
    // stays frozen until every worker arrives, so this unlocked read is
    // ordered by the wait above.
    const SimTime until = barrier_time_;
    if (hook_) hook_(w);
    for (std::size_t s = w; s < shards_; s += threads_) {
      if (errors_[s] != nullptr) continue;
      try {
        advance_(s, until);
      } catch (...) {
        errors_[s] = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (++arrived_ == threads_) cv_done_.notify_one();
    }
  }
}

void WindowExecutor::dispatch_window(SimTime barrier) {
  std::unique_lock<std::mutex> lk(mu_);
  barrier_time_ = barrier;
  arrived_ = 0;
  ++generation_;
  cv_work_.notify_all();
  cv_done_.wait(lk, [&] { return arrived_ == threads_; });
}

void WindowExecutor::run_parallel() {
  start_pool();
  std::fill(errors_.begin(), errors_.end(), nullptr);
  for (;;) {
    const bool failed = std::any_of(errors_.begin(), errors_.end(),
                                    [](const std::exception_ptr& e) { return e != nullptr; });
    SimTime next = SimTime::max();
    std::exception_ptr plan_error;
    if (!failed) {
      try {
        next = plan_();
      } catch (...) {
        plan_error = std::current_exception();
      }
    }
    if (failed || plan_error != nullptr || next == SimTime::max()) {
      // The pool stays parked for the next run; only report this one.
      if (plan_error != nullptr) std::rethrow_exception(plan_error);
      for (const std::exception_ptr& e : errors_) {
        if (e != nullptr) std::rethrow_exception(e);
      }
      return;
    }
    ++windows_;
    dispatch_window(next);
  }
}

}  // namespace rmacsim
