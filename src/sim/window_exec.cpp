#include "sim/window_exec.hpp"

#include <algorithm>
#include <chrono>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace rmacsim {

namespace {

void pin_to_cpu(unsigned worker) {
#ifdef __linux__
  const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(worker % ncpu, &set);
  // Best-effort: containers and cgroup cpusets may reject the mask, and an
  // unpinned worker is merely slower, never wrong.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)worker;
#endif
}

[[nodiscard]] std::uint64_t mono_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

WindowExecutor::WindowExecutor(std::size_t shards, unsigned threads, PlanFn plan,
                               AdvanceFn advance, bool pin_workers)
    : shards_{shards},
      threads_{static_cast<unsigned>(std::clamp<std::size_t>(
          threads == 0 ? shards : threads, 1, shards))},
      plan_{std::move(plan)},
      advance_{std::move(advance)},
      pin_{pin_workers},
      arrive_ns_(threads_, 0),
      last_exec_(threads_, 0),
      last_stall_(threads_, 0),
      errors_(shards) {}

WindowExecutor::~WindowExecutor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : pool_) t.join();
}

void WindowExecutor::run() {
  if (threads_ == 1) {
    run_serial();
  } else {
    run_parallel();
  }
}

void WindowExecutor::run_serial() {
  if (collect_) idle_from_ns_ = mono_ns();
  for (;;) {
    const SimTime barrier = plan_();
    if (barrier == SimTime::max()) return;
    ++windows_;
    if (hook_) hook_(0);
    if (collect_) {
      const std::uint64_t t0 = mono_ns();
      last_wait_ns_ = t0 - idle_from_ns_;
      for (std::size_t s = 0; s < shards_; ++s) advance_(s, barrier);
      const std::uint64_t t1 = mono_ns();
      last_exec_[0] = t1 - t0;
      last_stall_[0] = 0;
      idle_from_ns_ = t1;
    } else {
      for (std::size_t s = 0; s < shards_; ++s) advance_(s, barrier);
    }
  }
}

void WindowExecutor::start_pool() {
  if (!pool_.empty()) return;
  pool_.reserve(threads_);
  for (unsigned w = 0; w < threads_; ++w) {
    pool_.emplace_back([this, w] { worker_main(w); });
  }
}

void WindowExecutor::worker_main(unsigned w) {
  if (pin_) pin_to_cpu(w);
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    // barrier_time_ was published under mu_ before the generation bump and
    // stays frozen until every worker arrives, so this unlocked read is
    // ordered by the wait above.
    const SimTime until = barrier_time_;
    if (hook_) hook_(w);
    for (std::size_t s = w; s < shards_; s += threads_) {
      if (errors_[s] != nullptr) continue;
      try {
        advance_(s, until);
      } catch (...) {
        errors_[s] = std::current_exception();
      }
    }
    if (collect_) arrive_ns_[w] = mono_ns();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (++arrived_ == threads_) cv_done_.notify_one();
    }
  }
}

void WindowExecutor::dispatch_window(SimTime barrier) {
  const std::uint64_t t0 = collect_ ? mono_ns() : 0;
  std::unique_lock<std::mutex> lk(mu_);
  barrier_time_ = barrier;
  arrived_ = 0;
  ++generation_;
  cv_work_.notify_all();
  cv_done_.wait(lk, [&] { return arrived_ == threads_; });
  if (collect_) {
    std::uint64_t t_last = t0;
    for (unsigned w = 0; w < threads_; ++w) t_last = std::max(t_last, arrive_ns_[w]);
    for (unsigned w = 0; w < threads_; ++w) {
      last_exec_[w] = arrive_ns_[w] > t0 ? arrive_ns_[w] - t0 : 0;
      last_stall_[w] = t_last - std::max(arrive_ns_[w], t0);
    }
    last_wait_ns_ = t0 > idle_from_ns_ ? t0 - idle_from_ns_ : 0;
    idle_from_ns_ = t_last;
  }
}

void WindowExecutor::run_parallel() {
  start_pool();
  std::fill(errors_.begin(), errors_.end(), nullptr);
  if (collect_) idle_from_ns_ = mono_ns();
  for (;;) {
    const bool failed = std::any_of(errors_.begin(), errors_.end(),
                                    [](const std::exception_ptr& e) { return e != nullptr; });
    SimTime next = SimTime::max();
    std::exception_ptr plan_error;
    if (!failed) {
      try {
        next = plan_();
      } catch (...) {
        plan_error = std::current_exception();
      }
    }
    if (failed || plan_error != nullptr || next == SimTime::max()) {
      // The pool stays parked for the next run; only report this one.
      if (plan_error != nullptr) std::rethrow_exception(plan_error);
      for (const std::exception_ptr& e : errors_) {
        if (e != nullptr) std::rethrow_exception(e);
      }
      return;
    }
    ++windows_;
    dispatch_window(next);
  }
}

}  // namespace rmacsim
