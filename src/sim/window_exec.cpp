#include "sim/window_exec.hpp"

#include <algorithm>
#include <barrier>
#include <exception>
#include <thread>
#include <vector>

namespace rmacsim {

WindowExecutor::WindowExecutor(std::size_t shards, unsigned threads, PlanFn plan,
                               AdvanceFn advance)
    : shards_{shards},
      threads_{static_cast<unsigned>(std::clamp<std::size_t>(
          threads == 0 ? shards : threads, 1, shards))},
      plan_{std::move(plan)},
      advance_{std::move(advance)} {}

void WindowExecutor::run() {
  if (threads_ == 1) {
    run_serial();
  } else {
    run_parallel();
  }
}

void WindowExecutor::run_serial() {
  for (;;) {
    const SimTime barrier = plan_();
    if (barrier == SimTime::max()) return;
    ++windows_;
    for (std::size_t s = 0; s < shards_; ++s) advance_(s, barrier);
  }
}

void WindowExecutor::run_parallel() {
  // One slot per shard: a worker never writes another worker's slots, and
  // the window barrier orders every write against the main thread's reads.
  std::vector<std::exception_ptr> errors(shards_);
  SimTime barrier_time = SimTime::zero();
  bool stop = false;

  std::barrier sync(static_cast<std::ptrdiff_t>(threads_) + 1);

  const auto worker = [&](unsigned w) {
    for (;;) {
      sync.arrive_and_wait();  // A: barrier_time / stop published by main
      if (stop) return;
      for (std::size_t s = w; s < shards_; s += threads_) {
        if (errors[s] != nullptr) continue;
        try {
          advance_(s, barrier_time);
        } catch (...) {
          errors[s] = std::current_exception();
        }
      }
      sync.arrive_and_wait();  // B: all shards parked at the barrier
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads_);
  for (unsigned w = 0; w < threads_; ++w) pool.emplace_back(worker, w);

  for (;;) {
    SimTime next = SimTime::max();
    const bool failed =
        std::any_of(errors.begin(), errors.end(),
                    [](const std::exception_ptr& e) { return e != nullptr; });
    std::exception_ptr plan_error;
    if (!failed) {
      try {
        next = plan_();
      } catch (...) {
        plan_error = std::current_exception();
      }
    }
    if (failed || plan_error != nullptr || next == SimTime::max()) {
      stop = true;
      sync.arrive_and_wait();  // A: release workers into their exit path
      for (std::thread& t : pool) t.join();
      if (plan_error != nullptr) std::rethrow_exception(plan_error);
      for (const std::exception_ptr& e : errors) {
        if (e != nullptr) std::rethrow_exception(e);
      }
      return;
    }
    barrier_time = next;
    ++windows_;
    sync.arrive_and_wait();  // A: workers pick up barrier_time
    sync.arrive_and_wait();  // B: window complete
  }
}

}  // namespace rmacsim
