// Minimal string building helper (libstdc++ 12 has no <format>).
#pragma once

#include <sstream>
#include <string>

namespace rmacsim {

// cat("tx ", 3, " frames") -> "tx 3 frames"
template <typename... Args>
[[nodiscard]] std::string cat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

}  // namespace rmacsim
