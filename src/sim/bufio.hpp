// Shared to_chars-backed output buffer for artifact exporters.
//
// Every exporter (obs/ trace artifacts, metrics/ OpenMetrics + JSON
// snapshots) formats into one in-memory buffer and writes it with a single
// os.write().  The first version streamed through ofstream operator<< with a
// snprintf per field; on a 75-node run that put export at ~200ms against a
// ~40ms simulation budget (snprintf alone was most of it), so numbers go
// through std::to_chars and timestamps through a pure-integer path.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

#include "sim/time.hpp"

namespace rmacsim {

struct BufWriter {
  std::string s;

  BufWriter() { s.reserve(1u << 20); }

  void lit(const char* t) { s += t; }
  void ch(char c) { s += c; }
  void str(const std::string& t) { s += t; }
  void u64(std::uint64_t v) {
    char b[24];
    const auto r = std::to_chars(b, b + sizeof b, v);
    s.append(b, static_cast<std::size_t>(r.ptr - b));
  }
  void i64(std::int64_t v) {
    char b[24];
    const auto r = std::to_chars(b, b + sizeof b, v);
    s.append(b, static_cast<std::size_t>(r.ptr - b));
  }
  // Microsecond timestamp with nanosecond precision (Perfetto's `ts` unit).
  // Formatted from the integer nanosecond count — "<us>.<3-digit frac>".
  void us(SimTime t) {
    std::int64_t ns = t.nanoseconds();
    if (ns < 0) {
      ch('-');
      ns = -ns;
    }
    u64(static_cast<std::uint64_t>(ns) / 1000u);
    const auto frac = static_cast<unsigned>(static_cast<std::uint64_t>(ns) % 1000u);
    char b[4] = {'.', static_cast<char>('0' + frac / 100u),
                 static_cast<char>('0' + (frac / 10u) % 10u),
                 static_cast<char>('0' + frac % 10u)};
    s.append(b, 4);
  }
  // Matches ostream's default 6-significant-digit formatting.
  void dbl(double v) {
    char b[40];
    const auto r = std::to_chars(b, b + sizeof b, v, std::chars_format::general, 6);
    s.append(b, static_cast<std::size_t>(r.ptr - b));
  }
  // Matches ostream with setprecision(9).
  void dbl9(double v) {
    char b[40];
    const auto r = std::to_chars(b, b + sizeof b, v, std::chars_format::general, 9);
    s.append(b, static_cast<std::size_t>(r.ptr - b));
  }
  void escaped(const std::string& t) {
    for (char c : t) {
      switch (c) {
        case '"': s += "\\\""; break;
        case '\\': s += "\\\\"; break;
        case '\n': s += "\\n"; break;
        case '\t': s += "\\t"; break;
        case '\r': s += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char b[8];
            std::snprintf(b, sizeof b, "\\u%04x", c);
            s += b;
          } else {
            s += c;
          }
      }
    }
  }

  bool flush_to(const std::string& path) const {
    std::ofstream os(path, std::ios::binary);
    if (!os) return false;
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
    return static_cast<bool>(os);
  }
};

}  // namespace rmacsim
