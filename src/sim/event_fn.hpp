// Move-only callable with small-buffer optimization for scheduler events.
//
// A simulation schedules millions of short-lived closures; std::function
// heap-allocates captures beyond ~2 pointers, which dominates the event
// core's cost.  EventFn stores captures up to kEventFnInlineBytes inline
// (every closure in the protocol stack fits today), falling back to the
// heap only for oversized callables, so the common schedule/execute cycle
// performs zero allocations.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace rmacsim {

inline constexpr std::size_t kEventFnInlineBytes = 48;

class EventFn {
public:
  EventFn() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): callable wrapper
    emplace(std::forward<F>(f));
  }

  // Construct a callable directly into this EventFn's storage, destroying
  // any previous one.  The scheduler builds captures in the event slot with
  // this instead of move-assigning a temporary, which skips a relocate (an
  // indirect call plus a capture copy) on every scheduled event.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace(F&& f) {
    reset();
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vtable_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vtable_ = &kHeapVTable<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { steal(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return vtable_ != nullptr; }

  void operator()() { vtable_->call(buf_); }

  // Single-indirect-call execution for the scheduler's hot loop: detaches
  // the callable and returns a runner that moves the capture to the stack
  // and invokes it.  This EventFn is left empty immediately, so its storage
  // slot can be recycled before the runner fires — the runner moves the
  // capture out before any user code runs, making it safe for the callable
  // to schedule into (and overwrite) its own former slot.  Call the runner
  // exactly once, before the storage is relocated.
  struct Runner {
    void (*run)(void* storage);
    void* storage;
    void operator()() { run(storage); }
  };
  [[nodiscard]] Runner detach_runner() noexcept {
    const VTable* vt = vtable_;
    vtable_ = nullptr;
    return Runner{vt->run, buf_};
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(buf_);
      vtable_ = nullptr;
    }
  }

  // Whether a callable of type F would be stored without heap allocation.
  template <typename F>
  [[nodiscard]] static constexpr bool fits_inline() noexcept {
    return sizeof(F) <= kEventFnInlineBytes && alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

private:
  struct VTable {
    void (*call)(void* storage);
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct dst, destroy src
    void (*destroy)(void* storage) noexcept;
    void (*run)(void* storage);  // move to stack, destroy storage, invoke
  };

  void steal(EventFn& other) noexcept {
    if (other.vtable_ != nullptr) {
      vtable_ = other.vtable_;
      vtable_->relocate(buf_, other.buf_);
      other.vtable_ = nullptr;
    }
  }

  template <typename F>
  static constexpr VTable kInlineVTable{
      [](void* s) { (*std::launder(reinterpret_cast<F*>(s)))(); },
      [](void* dst, void* src) noexcept {
        F* from = std::launder(reinterpret_cast<F*>(src));
        ::new (dst) F(std::move(*from));
        from->~F();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<F*>(s))->~F(); },
      [](void* s) {
        F* from = std::launder(reinterpret_cast<F*>(s));
        F local(std::move(*from));
        from->~F();
        local();
      },
  };

  template <typename F>
  static constexpr VTable kHeapVTable{
      [](void* s) { (**std::launder(reinterpret_cast<F**>(s)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) F*(*std::launder(reinterpret_cast<F**>(src)));
      },
      [](void* s) noexcept { delete *std::launder(reinterpret_cast<F**>(s)); },
      [](void* s) {
        F* p = *std::launder(reinterpret_cast<F**>(s));
        (*p)();
        delete p;
      },
  };

  alignas(std::max_align_t) unsigned char buf_[kEventFnInlineBytes];
  const VTable* vtable_{nullptr};
};

}  // namespace rmacsim
