#include "sim/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace rmacsim {

namespace {
constexpr std::size_t kHeapArity = 4;
}  // namespace

std::uint32_t Scheduler::acquire_event_slot() {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].active = true;
  ++live_;
  ++scheduled_;
  if (live_ > peak_live_) peak_live_ = live_;
  return slot;
}

EventId Scheduler::commit_event(SimTime at, std::uint32_t slot, bool bulk) {
  assert(at >= now_ && "cannot schedule into the past");
  const std::uint32_t generation = slots_[slot].generation;
  const HeapNode node{at, next_seq_++, slot, generation};
  if (tick_of(at) - cursor_tick_ < static_cast<std::int64_t>(kBucketCount)) {
    ring_insert(node);
  } else {
    heap_.push_back(node);
    if (!bulk) sift_up(heap_.size() - 1);
  }
  return encode(slot, generation);
}

EventId Scheduler::insert_event(SimTime at, EventFn fn, bool bulk) {
  const std::uint32_t slot = acquire_event_slot();
  slots_[slot].fn = std::move(fn);
  return commit_event(at, slot, bulk);
}

void Scheduler::ring_insert(const HeapNode& node) {
  std::int64_t tick = tick_of(node.at);
  // A tick behind the cursor is only reachable when the cursor ran ahead of
  // now() over tombstone-only buckets; folding the node into the active
  // bucket keeps it executable, and the (at, seq) bucket sort still places
  // it before everything later.
  if (tick < cursor_tick_) tick = cursor_tick_;
  const std::size_t idx = static_cast<std::size_t>(tick) & kBucketMask;
  std::uint32_t tail = bucket_tail_[idx];
  if (tail == kNoChunk || chunks_[tail].count == Chunk::kNodes) {
    std::uint32_t c;
    if (!chunk_free_.empty()) {
      c = chunk_free_.back();
      chunk_free_.pop_back();
    } else {
      c = static_cast<std::uint32_t>(chunks_.size());
      chunks_.emplace_back();
    }
    Chunk& ch = chunks_[c];
    ch.count = 0;
    ch.next = kNoChunk;
    if (tail == kNoChunk) {
      bucket_head_[idx] = c;
      set_bit(idx);
    } else {
      chunks_[tail].next = c;
    }
    bucket_tail_[idx] = c;
    tail = c;
  }
  Chunk& ch = chunks_[tail];
  ch.nodes[ch.count++] = node;
  ++ring_nodes_;
}

void Scheduler::collect_bucket(std::size_t idx) {
  std::uint32_t c = bucket_head_[idx];
  bucket_head_[idx] = kNoChunk;
  bucket_tail_[idx] = kNoChunk;
  clear_bit(idx);
  while (c != kNoChunk) {
    const Chunk& ch = chunks_[c];
    active_.insert(active_.end(), ch.nodes.begin(), ch.nodes.begin() + ch.count);
    ring_nodes_ -= ch.count;
    chunk_free_.push_back(c);
    c = ch.next;
  }
  // Far-heap events sharing the cursor tick merge ahead of the bucket sort,
  // so the (at, seq) order is global even across the horizon boundary.
  while (!heap_.empty() && tick_of(heap_.front().at) == cursor_tick_) {
    active_.push_back(heap_.front());
    pop_heap_node();
  }
}

void Scheduler::finish_bulk(std::size_t mark) noexcept {
  const std::size_t k = heap_.size() - mark;
  if (k == 0) return;
  // Per-node sifting beats a full rebuild until the batch is a sizable
  // fraction of the heap.
  if (k * 2 * (kHeapArity + 1) < heap_.size()) {
    for (std::size_t i = mark; i < heap_.size(); ++i) sift_up(i);
  } else if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / kHeapArity + 1; i-- > 0;) sift_down(i);
  }
}

EventId Scheduler::schedule_at(SimTime at, EventFn fn) {
  return insert_event(at, std::move(fn), false);
}

EventId Scheduler::schedule_in(SimTime delay, EventFn fn) {
  return insert_event(now_ + delay, std::move(fn), false);
}

void Scheduler::release_slot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.active = false;
  ++s.generation;  // stale EventIds and queue nodes now mismatch
  free_slots_.push_back(slot);
  --live_;
}

bool Scheduler::cancel(EventId id) noexcept {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size()) return false;
  const Slot& s = slots_[slot];
  if (!s.active || s.generation != generation_of(id)) return false;
  release_slot(slot);  // the queue node is skipped lazily when reached
  ++cancelled_;
  return true;
}

bool Scheduler::pending(EventId id) const noexcept {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size()) return false;
  const Slot& s = slots_[slot];
  return s.active && s.generation == generation_of(id);
}

std::int64_t Scheduler::next_ring_tick() const noexcept {
  // Circular scan of the occupancy bitmap starting at the cursor's index; a
  // set bit at distance d means a chunked bucket at tick cursor + d.
  const std::size_t c0 = static_cast<std::size_t>(cursor_tick_) & kBucketMask;
  std::size_t w = c0 >> 6;
  std::uint64_t word = ring_bits_[w] & (~std::uint64_t{0} << (c0 & 63));
  for (std::size_t step = 0;; ++step) {
    if (word != 0) {
      const std::size_t idx = (w << 6) | static_cast<std::size_t>(std::countr_zero(word));
      const std::size_t d = (idx - c0) & kBucketMask;
      return cursor_tick_ + static_cast<std::int64_t>(d);
    }
    if (step == kBitWords) return -1;
    w = (w + 1) & (kBitWords - 1);
    word = ring_bits_[w];
    if (step + 1 == kBitWords) {
      // Wrapped back to the start word: only bits below the cursor's index
      // remain unseen (they map to the top of the window).
      word &= (c0 & 63) != 0 ? ~(~std::uint64_t{0} << (c0 & 63)) : 0;
    }
  }
}

bool Scheduler::position_next(SimTime limit) {
  for (;;) {
    const std::size_t ci = static_cast<std::size_t>(cursor_tick_) & kBucketMask;
    if (bucket_head_[ci] != kNoChunk) collect_bucket(ci);
    if (bucket_pos_ < active_.size()) {
      if (active_.size() != bucket_sorted_) {
        if (active_.size() - bucket_pos_ > 1) {
          std::sort(active_.begin() + static_cast<std::ptrdiff_t>(bucket_pos_), active_.end(),
                    earlier);
        }
        bucket_sorted_ = active_.size();
      }
      serving_heap_ = false;
      return active_[bucket_pos_].at <= limit;
    }
    // Active bucket exhausted: jump the cursor to the next populated tick,
    // ring or far heap, whichever is earlier.  A far-only tick is served
    // straight off the heap (no ring round-trip); an equal tick merges in
    // collect_bucket.  Never advance past the limit: a later schedule_at
    // between runs may target any tick above now(), and the ring only
    // covers [cursor, cursor + kBucketCount).
    active_.clear();
    bucket_pos_ = 0;
    bucket_sorted_ = 0;
    drop_stale_tops();
    const std::int64_t rt = ring_nodes_ == 0 ? -1 : next_ring_tick();
    const std::int64_t ht = heap_.empty() ? -1 : tick_of(heap_.front().at);
    if (rt < 0 && ht < 0) return false;
    if (ht >= 0 && (rt < 0 || ht < rt)) {
      if (heap_.front().at > limit) return false;
      cursor_tick_ = ht;
      serving_heap_ = true;
      return true;
    }
    if (rt > tick_of(limit)) return false;
    cursor_tick_ = rt;
  }
}

bool Scheduler::execute_front() {
  const HeapNode node = active_[bucket_pos_++];
  Slot& s = slots_[node.slot];
  if (!s.active || s.generation != node.generation) return false;  // tombstone
  // Detach the callback and recycle the slot *before* running: the callback
  // is free to schedule into (and reuse) its own slot — the runner moves the
  // capture to the stack before any user code executes.
  EventFn::Runner run = s.fn.detach_runner();
  release_slot(node.slot);
  now_ = node.at;
  ++executed_;
  run();
  return true;
}

bool Scheduler::execute_heap_front() {
  const HeapNode node = heap_.front();
  pop_heap_node();
  Slot& s = slots_[node.slot];
  if (!s.active || s.generation != node.generation) return false;  // tombstone
  EventFn::Runner run = s.fn.detach_runner();
  release_slot(node.slot);
  now_ = node.at;
  ++executed_;
  run();
  return true;
}

void Scheduler::sweep_bucket(SimTime limit) {
  // Consume the active bucket in (at, seq) order without re-deriving the
  // global next event per entry.  All state lives in members and is re-read
  // every iteration, so callbacks may append to this bucket (re-collected
  // and re-sorted via the bucket_head_/bucket_sorted_ checks), cancel later
  // members (generation-checked), or even re-enter run()/run_until() — a
  // nested run simply consumes from the same wheel and this loop picks up
  // wherever it left the members.
  for (;;) {
    const std::size_t ci = static_cast<std::size_t>(cursor_tick_) & kBucketMask;
    if (bucket_head_[ci] != kNoChunk) collect_bucket(ci);
    if (bucket_pos_ >= active_.size()) return;
    if (active_.size() != bucket_sorted_) {
      if (active_.size() - bucket_pos_ > 1) {
        std::sort(active_.begin() + static_cast<std::ptrdiff_t>(bucket_pos_), active_.end(),
                  earlier);
      }
      bucket_sorted_ = active_.size();
    }
    const HeapNode node = active_[bucket_pos_];
    if (node.at > limit) return;
    ++bucket_pos_;
    Slot& s = slots_[node.slot];
    if (!s.active || s.generation != node.generation) continue;  // tombstone
    EventFn::Runner run = s.fn.detach_runner();
    release_slot(node.slot);
    now_ = node.at;
    ++executed_;
    run();
  }
}

SimTime Scheduler::next_event_time() const noexcept {
  SimTime best = SimTime::max();
  for (std::size_t i = bucket_pos_; i < active_.size(); ++i) {
    if (active_[i].at < best) best = active_[i].at;
  }
  if (best == SimTime::max() && ring_nodes_ != 0) {
    // Nothing unconsumed under the cursor: peek the next chunked bucket.
    const std::size_t c0 = static_cast<std::size_t>(cursor_tick_) & kBucketMask;
    for (std::size_t d = 0; d < kBucketCount; ++d) {
      const std::size_t idx = (c0 + d) & kBucketMask;
      if ((ring_bits_[idx >> 6] & (1ull << (idx & 63))) == 0) continue;
      for (std::uint32_t c = bucket_head_[idx]; c != kNoChunk; c = chunks_[c].next) {
        const Chunk& ch = chunks_[c];
        for (std::uint32_t i = 0; i < ch.count; ++i) {
          if (ch.nodes[i].at < best) best = ch.nodes[i].at;
        }
      }
      break;
    }
  }
  if (!heap_.empty() && heap_.front().at < best) best = heap_.front().at;
  return best;
}

void Scheduler::sift_up(std::size_t i) noexcept {
  const HeapNode node = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!later(heap_[parent], node)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = node;
}

void Scheduler::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  const HeapNode node = heap_[i];
  for (;;) {
    const std::size_t first = kHeapArity * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + kHeapArity, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (later(heap_[best], heap_[c])) best = c;
    }
    if (!later(node, heap_[best])) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = node;
}

void Scheduler::pop_heap_node() noexcept {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void Scheduler::drop_stale_tops() noexcept {
  while (!heap_.empty()) {
    const HeapNode& top = heap_.front();
    const Slot& s = slots_[top.slot];
    if (s.active && s.generation == top.generation) break;
    pop_heap_node();
  }
}

bool Scheduler::step() {
  while (position_next(SimTime::max())) {
    if (serving_heap_ ? execute_heap_front() : execute_front()) return true;
  }
  return false;
}

void Scheduler::run_until(SimTime until) {
  while (position_next(until)) {
    if (serving_heap_) {
      execute_heap_front();
    } else if (batch_dispatch_) {
      sweep_bucket(until);
    } else {
      execute_front();
    }
  }
  if (now_ < until) now_ = until;
}

void Scheduler::run() {
  while (position_next(SimTime::max())) {
    if (serving_heap_) {
      execute_heap_front();
    } else if (batch_dispatch_) {
      sweep_bucket(SimTime::max());
    } else {
      execute_front();
    }
  }
}

}  // namespace rmacsim
