#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace rmacsim {

namespace {
constexpr std::size_t kHeapArity = 4;
}  // namespace

EventId Scheduler::schedule_at(SimTime at, EventFn fn) {
  assert(at >= now_ && "cannot schedule into the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.active = true;
  ++live_;
  ++scheduled_;
  if (live_ > peak_live_) peak_live_ = live_;
  heap_.push_back(HeapNode{at, next_seq_++, slot, s.generation});
  sift_up(heap_.size() - 1);
  return encode(slot, s.generation);
}

EventId Scheduler::schedule_in(SimTime delay, EventFn fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

void Scheduler::release_slot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.active = false;
  ++s.generation;  // stale EventIds and heap nodes now mismatch
  free_slots_.push_back(slot);
  --live_;
}

bool Scheduler::cancel(EventId id) noexcept {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size()) return false;
  const Slot& s = slots_[slot];
  if (!s.active || s.generation != generation_of(id)) return false;
  release_slot(slot);  // the heap node is skipped lazily when popped
  ++cancelled_;
  return true;
}

bool Scheduler::pending(EventId id) const noexcept {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size()) return false;
  const Slot& s = slots_[slot];
  return s.active && s.generation == generation_of(id);
}

SimTime Scheduler::next_event_time() const noexcept {
  // The top may be a cancelled tombstone; a cancelled event still bounds the
  // next live event's time from below, so this is only used as a hint; the
  // run loops do the authoritative skipping.
  return heap_.empty() ? SimTime::max() : heap_.front().at;
}

void Scheduler::sift_up(std::size_t i) noexcept {
  const HeapNode node = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!later(heap_[parent], node)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = node;
}

void Scheduler::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  const HeapNode node = heap_[i];
  for (;;) {
    const std::size_t first = kHeapArity * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + kHeapArity, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (later(heap_[best], heap_[c])) best = c;
    }
    if (!later(node, heap_[best])) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = node;
}

void Scheduler::pop_heap_node() noexcept {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void Scheduler::drop_stale_tops() noexcept {
  while (!heap_.empty()) {
    const HeapNode& top = heap_.front();
    const Slot& s = slots_[top.slot];
    if (s.active && s.generation == top.generation) break;
    pop_heap_node();
  }
}

bool Scheduler::step() {
  drop_stale_tops();
  if (heap_.empty()) return false;
  const HeapNode top = heap_.front();
  pop_heap_node();
  // Move the callback out and recycle the slot *before* running: the
  // callback is free to schedule into (and reuse) its own slot.
  EventFn fn = std::move(slots_[top.slot].fn);
  release_slot(top.slot);
  now_ = top.at;
  ++executed_;
  fn();
  return true;
}

void Scheduler::run_until(SimTime until) {
  for (;;) {
    drop_stale_tops();
    if (heap_.empty() || heap_.front().at > until) break;
    step();
  }
  if (now_ < until) now_ = until;
}

void Scheduler::run() {
  while (step()) {
  }
}

}  // namespace rmacsim
