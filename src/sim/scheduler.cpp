#include "sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace rmacsim {

EventId Scheduler::schedule_at(SimTime at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule into the past");
  const EventId id = next_id_++;
  auto entry = std::make_unique<Entry>(Entry{at, id, std::move(fn)});
  live_.emplace(id, entry.get());
  heap_.push(std::move(entry));
  return id;
}

EventId Scheduler::schedule_in(SimTime delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Scheduler::cancel(EventId id) noexcept {
  auto it = live_.find(id);
  if (it == live_.end()) return false;
  it->second->fn = nullptr;  // lazy deletion: popped entries with null fn are skipped
  live_.erase(it);
  return true;
}

bool Scheduler::pending(EventId id) const noexcept { return live_.contains(id); }

SimTime Scheduler::next_event_time() const noexcept {
  // The top may be a cancelled tombstone; a cancelled event still bounds the
  // next live event's time from below, so for run loops this is only used as
  // a hint; step() does the authoritative skipping.
  return heap_.empty() ? SimTime::max() : heap_.top()->at;
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    // priority_queue::top() is const; we must move the entry out to run it.
    auto& top = const_cast<std::unique_ptr<Entry>&>(heap_.top());
    std::unique_ptr<Entry> entry = std::move(top);
    heap_.pop();
    if (!entry->fn) continue;  // cancelled
    live_.erase(entry->id);
    now_ = entry->at;
    ++executed_;
    entry->fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(SimTime until) {
  for (;;) {
    if (heap_.empty()) break;
    if (heap_.top()->at > until) break;
    step();
  }
  if (now_ < until) now_ = until;
}

void Scheduler::run() {
  while (step()) {
  }
}

}  // namespace rmacsim
