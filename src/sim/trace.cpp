#include "sim/trace.hpp"

namespace rmacsim {

std::string_view to_string(TraceCategory c) noexcept {
  switch (c) {
    case TraceCategory::kPhy: return "phy";
    case TraceCategory::kTone: return "tone";
    case TraceCategory::kMac: return "mac";
    case TraceCategory::kMacState: return "mac.state";
    case TraceCategory::kNet: return "net";
    case TraceCategory::kApp: return "app";
  }
  return "?";
}

std::string_view to_string(TraceEvent e) noexcept {
  switch (e) {
    case TraceEvent::kGeneric: return "generic";
    case TraceEvent::kTxStart: return "tx-start";
    case TraceEvent::kTxEnd: return "tx-end";
    case TraceEvent::kFrameRx: return "frame-rx";
    case TraceEvent::kToneOn: return "tone-on";
    case TraceEvent::kToneOff: return "tone-off";
    case TraceEvent::kMacState: return "mac-state";
    case TraceEvent::kDeliver: return "deliver";
  }
  return "?";
}

}  // namespace rmacsim
