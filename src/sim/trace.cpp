#include "sim/trace.hpp"

namespace rmacsim {

std::string_view to_string(TraceCategory c) noexcept {
  switch (c) {
    case TraceCategory::kPhy: return "phy";
    case TraceCategory::kTone: return "tone";
    case TraceCategory::kMac: return "mac";
    case TraceCategory::kMacState: return "mac.state";
    case TraceCategory::kNet: return "net";
    case TraceCategory::kApp: return "app";
  }
  return "?";
}

}  // namespace rmacsim
