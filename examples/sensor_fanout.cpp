// Sparse sensor network scenario (§1 names sparse sensor networks as a
// target workload): a sink periodically multicasts configuration updates to
// a sparse field of sensors over a noisy channel.  Demonstrates RMAC's ARQ
// recovering from bit errors where the plain unreliable service loses
// frames silently.
//
//   ./build/examples/sensor_fanout [ber]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <unordered_set>
#include <vector>

#include "mac/rmac/rmac_protocol.hpp"
#include "phy/medium.hpp"
#include "phy/tone_channel.hpp"

using namespace rmacsim;

namespace {

struct CountingUpper final : MacUpper {
  int received{0};
  int send_failures{0};
  std::unordered_set<std::uint32_t> seen;  // dedupe MAC-level retransmissions
  void mac_deliver(const Frame& frame) override {
    if (frame.is_data() && frame.packet && seen.insert(frame.packet->seq).second) ++received;
  }
  void mac_reliable_done(const ReliableSendResult& r) override {
    if (!r.success) ++send_failures;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const double ber = argc > 1 ? std::atof(argv[1]) : 5e-5;

  PhyParams phy;
  phy.bit_error_rate = ber;

  Scheduler sched;
  Medium medium{sched, phy, Rng{99}};
  ToneChannel rbt{sched, medium.params(), "RBT"};
  ToneChannel abt{sched, medium.params(), "ABT"};

  // Sink at the centre, 12 sensors scattered within range.
  std::vector<std::unique_ptr<StationaryMobility>> mobs;
  std::vector<std::unique_ptr<Radio>> radios;
  std::vector<std::unique_ptr<RmacProtocol>> macs;
  std::vector<std::unique_ptr<CountingUpper>> uppers;
  Rng placement{4242};
  for (NodeId id = 0; id < 13; ++id) {
    const Vec2 pos = id == 0 ? Vec2{0.0, 0.0}
                             : Vec2{placement.uniform(-50.0, 50.0),
                                    placement.uniform(-50.0, 50.0)};
    mobs.push_back(std::make_unique<StationaryMobility>(pos));
    radios.push_back(std::make_unique<Radio>(medium, id, *mobs.back()));
    rbt.attach(id, *mobs.back());
    abt.attach(id, *mobs.back());
    macs.push_back(std::make_unique<RmacProtocol>(sched, *radios.back(), rbt, abt,
                                                  Rng{id + 7},
                                                  RmacProtocol::Params{MacParams{}, true}));
    uppers.push_back(std::make_unique<CountingUpper>());
    macs.back()->set_upper(uppers.back().get());
  }

  std::vector<NodeId> sensors;
  for (NodeId id = 1; id < 13; ++id) sensors.push_back(id);

  const int kUpdates = 50;
  std::printf("sensor fan-out: sink -> 12 sensors, %d config updates of 200 B, "
              "BER %.0e\n\n", kUpdates, ber);

  // Phase 1: reliable multicast.
  for (int u = 0; u < kUpdates; ++u) {
    auto pkt = std::make_shared<AppPacket>();
    pkt->origin = 0;
    pkt->seq = static_cast<std::uint32_t>(u);
    pkt->payload_bytes = 200;
    macs[0]->reliable_send(std::move(pkt), sensors);
  }
  sched.run_until(SimTime::sec(30));
  int reliable_received = 0;
  for (std::size_t i = 1; i < uppers.size(); ++i) reliable_received += uppers[i]->received;

  // Phase 2: the same load via the unreliable service.
  for (auto& u : uppers) u->received = 0;
  for (int u = 0; u < kUpdates; ++u) {
    auto pkt = std::make_shared<AppPacket>();
    pkt->origin = 0;
    pkt->seq = static_cast<std::uint32_t>(1000 + u);
    pkt->payload_bytes = 200;
    macs[0]->unreliable_send(std::move(pkt), kBroadcastId);
  }
  sched.run_until(sched.now() + SimTime::sec(30));
  int unreliable_received = 0;
  for (std::size_t i = 1; i < uppers.size(); ++i) unreliable_received += uppers[i]->received;

  const int expected = kUpdates * 12;
  const MacStats& s = macs[0]->stats();
  std::printf("Reliable Send:   %4d/%d receptions (%.1f%%), %llu retransmissions, "
              "%llu drops\n",
              reliable_received, expected, 100.0 * reliable_received / expected,
              static_cast<unsigned long long>(s.retransmissions),
              static_cast<unsigned long long>(s.reliable_dropped));
  std::printf("Unreliable Send: %4d/%d receptions (%.1f%%), 0 retransmissions by design\n",
              unreliable_received, expected, 100.0 * unreliable_received / expected);
  std::printf("\nThe ARQ machinery (MRTS rebuild from silent ABT slots) recovers what\n"
              "the noisy channel corrupts; the unreliable service shows the raw loss.\n");
  return 0;
}
