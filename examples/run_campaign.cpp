// Campaign orchestrator CLI: expand a sweep spec (JSON file or inline flags)
// into cells and fan them across worker processes with live fleet
// observability.  See docs/campaign.md for the spec format and artifacts.
//
//   run_campaign --spec sweep.json --workers 4 --store build/campaign_store
//                --out build --prefix nightly --progress
//
//   run_campaign --protocols rmac,dcf --mobilities stationary,speed2
//                --rates 10,40 --seeds 1,2,3 --nodes 75 --packets 300
//
// Re-running an identical campaign completes from the content-addressed
// store with zero simulation work; --force ignores cached records.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "campaign/coordinator.hpp"
#include "campaign/revision.hpp"
#include "campaign/spec.hpp"

using namespace rmacsim;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--spec file.json]\n"
      "          [--protocols csv] [--mobilities csv] [--rates csv] [--seeds csv]\n"
      "          [--nodes n] [--packets n] [--payload bytes] [--area WxH]\n"
      "          [--shards n]\n"
      "          [--workers n] [--store dir] [--out dir] [--prefix name]\n"
      "          [--worker-bin path] [--heartbeat sec] [--status-interval sec]\n"
      "          [--timeout sec] [--retries n] [--progress] [--force]\n"
      "          [--inject-kill n] [--print-cells]\n"
      "\n"
      "--workers 0 runs cells in-process (serial reference mode).\n"
      "--retries n allows n simulation attempts per cell (default 2).\n"
      "--inject-kill n SIGKILLs the nth scheduled run (crash-retry test hook).\n",
      argv0);
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

// Default --worker-bin: the run_experiment built next to this binary.
std::string sibling_run_experiment() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "run_experiment";
  buf[n] = '\0';
  std::string path(buf);
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "run_experiment";
  return path.substr(0, slash + 1) + "run_experiment";
}

const char* state_name(CellOutcome::State s) {
  switch (s) {
    case CellOutcome::State::kCached: return "cached";
    case CellOutcome::State::kRan: return "ran";
    case CellOutcome::State::kFailed: return "FAILED";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  CampaignSpec spec;
  CampaignOptions opts;
  bool have_spec_file = false;
  bool print_cells = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--spec") {
      const char* path = next();
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "error: cannot open spec file %s\n", path);
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      std::string error;
      if (!parse_campaign_spec(text.str(), spec, &error)) {
        std::fprintf(stderr, "error: %s: %s\n", path, error.c_str());
        return 2;
      }
      have_spec_file = true;
    } else if (arg == "--protocols") {
      spec.protocols.clear();
      for (const auto& tok : split_csv(next())) {
        Protocol p;
        if (!protocol_from_token(tok, p)) {
          std::fprintf(stderr, "error: unknown protocol '%s'\n", tok.c_str());
          return 2;
        }
        spec.protocols.push_back(p);
      }
    } else if (arg == "--mobilities") {
      spec.mobilities.clear();
      for (const auto& tok : split_csv(next())) {
        MobilityScenario m;
        if (!mobility_from_token(tok, m)) {
          std::fprintf(stderr, "error: unknown mobility '%s'\n", tok.c_str());
          return 2;
        }
        spec.mobilities.push_back(m);
      }
    } else if (arg == "--rates") {
      spec.rates.clear();
      for (const auto& tok : split_csv(next())) spec.rates.push_back(std::atof(tok.c_str()));
    } else if (arg == "--seeds") {
      spec.seeds.clear();
      for (const auto& tok : split_csv(next())) {
        spec.seeds.push_back(static_cast<std::uint64_t>(std::atoll(tok.c_str())));
      }
    } else if (arg == "--nodes") {
      spec.base.num_nodes = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--packets") {
      spec.base.num_packets = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--payload") {
      spec.base.payload_bytes = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--area") {
      double w = 0.0;
      double h = 0.0;
      if (std::sscanf(next(), "%lfx%lf", &w, &h) != 2 || w <= 0.0 || h <= 0.0) {
        std::fprintf(stderr, "error: --area expects WxH in metres, e.g. 500x300\n");
        return 2;
      }
      spec.base.area.width = w;
      spec.base.area.height = h;
    } else if (arg == "--shards") {
      spec.base.shards = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--workers") {
      opts.workers = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--store") {
      opts.store_dir = next();
    } else if (arg == "--out") {
      opts.out_dir = next();
    } else if (arg == "--prefix") {
      opts.prefix = next();
    } else if (arg == "--worker-bin") {
      opts.worker_binary = next();
    } else if (arg == "--heartbeat") {
      opts.heartbeat_interval_s = std::atof(next());
    } else if (arg == "--status-interval") {
      opts.status_interval_s = std::atof(next());
    } else if (arg == "--timeout") {
      opts.worker_timeout_s = std::atof(next());
    } else if (arg == "--retries") {
      opts.max_attempts = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--progress") {
      opts.progress = true;
    } else if (arg == "--force") {
      opts.force = true;
    } else if (arg == "--inject-kill") {
      opts.inject_kill_cell = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--print-cells") {
      print_cells = true;
    } else {
      usage(argv[0]);
    }
  }
  if (opts.max_attempts == 0) {
    std::fprintf(stderr, "error: --retries must be >= 1\n");
    return 2;
  }
  if (opts.workers > 0 && opts.worker_binary.empty()) {
    opts.worker_binary = sibling_run_experiment();
  }
  (void)have_spec_file;

  const std::vector<CampaignCell> cells = expand_cells(spec, build_revision());
  if (cells.empty()) {
    std::fprintf(stderr, "error: campaign expands to zero cells\n");
    return 2;
  }
  if (print_cells) {
    for (const auto& cell : cells) {
      std::printf("%s  %s\n", cell.key.c_str(), cell.label.c_str());
    }
    return 0;
  }

  std::printf("campaign: %zu cells (revision %s), %u workers, store %s\n", cells.size(),
              build_revision(), opts.workers, opts.store_dir.c_str());
  const CampaignResult r = run_campaign(cells, opts);
  if (!r.error.empty()) {
    std::fprintf(stderr, "error: %s\n", r.error.c_str());
    return 2;
  }

  std::printf("\n%-40s %-10s %-8s %s\n", "cell", "state", "attempts", "events");
  for (const auto& cell : r.cells) {
    std::printf("%-40s %-10s %-8u %llu%s\n", cell.label.c_str(), state_name(cell.state),
                cell.attempts, static_cast<unsigned long long>(cell.events),
                cell.conservation_ok || cell.state == CellOutcome::State::kFailed
                    ? ""
                    : "  [conservation VIOLATED]");
    if (!cell.error.empty()) std::printf("    %s\n", cell.error.c_str());
  }
  std::printf("\n%u cells: %u cached, %u ran, %u failed, %u retries; %llu events in %.1f s\n",
              r.total, r.cached, r.ran, r.failed, r.retries,
              static_cast<unsigned long long>(r.events), r.wall_s);
  std::printf("delivered %llu / expected %llu, conservation %s\n",
              static_cast<unsigned long long>(r.ledger.delivered),
              static_cast<unsigned long long>(r.ledger.expected),
              r.ledger.conservation_ok() ? "OK" : "VIOLATED");
  std::printf("manifest  %s\naggregate %s\nstatus    %s\n", r.manifest_path.c_str(),
              r.aggregate_path.c_str(), r.status_path.c_str());
  return r.ok ? 0 : 1;
}
