// Full evaluation sweep as a CSV emitter — every metric the paper's
// Figures 7-13 plot, one row per (protocol, scenario, rate), ready for
// plotting with any tool.
//
//   ./build/examples/paper_sweep [seeds] [packets] > results.csv
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "scenario/parallel_runner.hpp"

using namespace rmacsim;

int main(int argc, char** argv) {
  const unsigned seeds = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 2;
  const std::uint32_t packets =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 300;

  std::vector<ExperimentConfig> configs;
  const double rates[] = {5, 10, 20, 40, 60, 80, 100, 120};
  const MobilityScenario mobs[] = {MobilityScenario::kStationary,
                                   MobilityScenario::kSpeed1, MobilityScenario::kSpeed2};
  for (const Protocol proto : {Protocol::kRmac, Protocol::kBmmm}) {
    for (const MobilityScenario mob : mobs) {
      for (const double rate : rates) {
        for (unsigned s = 0; s < seeds; ++s) {
          ExperimentConfig c;
          c.protocol = proto;
          c.mobility = mob;
          c.rate_pps = rate;
          c.num_packets = packets;
          c.seed = s + 1;
          configs.push_back(c);
        }
      }
    }
  }

  std::fprintf(stderr, "running %zu experiments (%u seeds x %u packets)...\n",
               configs.size(), seeds, packets);
  std::size_t done = 0;
  const auto results =
      run_experiments(configs, 0, [&](const ExperimentResult&) {
        std::fprintf(stderr, "\r%zu/%zu", ++done, configs.size());
      });
  std::fprintf(stderr, "\n");

  // Per-reason loss columns come straight from the ledger (receptions), so a
  // row's losses always decompose: expected = delivered + sum(drop_*).
  std::printf("protocol,mobility,rate_pps,seed,delivery_ratio,avg_delay_s,p99_delay_s,"
              "drop_ratio,retx_ratio,txoh_ratio,mrts_len_avg,mrts_len_p99,mrts_len_max,"
              "abort_avg,abort_p99,abort_max,tree_hops_avg,tree_children_avg,"
              "believed_success,events,expected,delivered");
  for (std::size_t i = 1; i < kDropReasonCount; ++i) {
    std::printf(",drop_%s", to_string(static_cast<DropReason>(i)));
  }
  std::printf(",conservation_ok\n");
  for (const auto& r : results) {
    std::printf("%s,%s,%.0f,%llu,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.2f,%.1f,%.1f,%.6f,%.6f,"
                "%.6f,%.3f,%.3f,%.6f,%llu,%llu,%llu",
                to_string(r.config.protocol), to_string(r.config.mobility),
                r.config.rate_pps, static_cast<unsigned long long>(r.config.seed),
                r.delivery_ratio, r.avg_delay_s, r.p99_delay_s, r.avg_drop_ratio,
                r.avg_retx_ratio, r.avg_txoh_ratio, r.mrts_len_avg, r.mrts_len_p99,
                r.mrts_len_max, r.abort_avg, r.abort_p99, r.abort_max, r.tree_hops_avg,
                r.tree_children_avg, r.mac_believed_success,
                static_cast<unsigned long long>(r.events_executed),
                static_cast<unsigned long long>(r.ledger.expected),
                static_cast<unsigned long long>(r.ledger.delivered));
    for (std::size_t i = 1; i < kDropReasonCount; ++i) {
      std::printf(",%llu", static_cast<unsigned long long>(r.ledger.dropped[i]));
    }
    std::printf(",%d\n", r.ledger.conservation_ok() ? 1 : 0);
  }
  return 0;
}
