// Single-experiment CLI: run any protocol / scenario / rate combination and
// print every metric the harness collects.
//
//   ./build/examples/run_experiment --protocol rmac --mobility speed1
//       --rate 20 --packets 500 --seed 3 --nodes 75 [--ber 1e-5]
//       [--capture 2.0] [--no-rbt] [--queue-limit 64] [--audit] [--digest]
//       [--obs] [--obs-dir DIR] [--metrics] [--metrics-dir DIR] [--profile]
//       [--shards n] [--shard-threads n] [--lookahead-us us]
//       [--shard-partition stripes|grid|rcb] [--shard-grid RxC] [--shard-pin]
//       [--telemetry] [--progress sec]
//
// --shards > 1 runs the spatially sharded parallel engine (docs/parallel.md)
// with one worker thread per shard unless --shard-threads overrides it;
// --lookahead-us sets the window floor (0 = strict mode, window = tau).
// --shard-partition picks the spatial partitioner; --shard-grid fixes the
// grid shape (implies --shard-partition grid and --shards R*C; an explicit
// --shards that disagrees is an error); --shard-pin pins worker threads to
// CPUs (benchmarks on otherwise-idle hosts).  --telemetry records
// window/barrier telemetry without the rest of the flight recorder;
// --progress emits one JSON heartbeat line to stderr every `sec` seconds of
// wall time.
//
// --obs-dir attaches the flight recorder and writes the Perfetto trace,
// journey JSONL, time-series CSV, and run manifest into DIR.  On sharded
// runs the trace additionally carries per-worker window tracks, the CSV is
// per-shard, and <prefix>_telemetry.json holds the window telemetry.  --obs
// attaches the recorder without writing artifacts (summary counts only) —
// handy for measuring the recorder's observer effect.
//
// --metrics-dir snapshots the metrics registry into DIR as
// <prefix>_metrics.txt (OpenMetrics) and _metrics.json; --metrics prints the
// loss-ledger breakdown and conservation verdict without writing artifacts.
// --profile attaches the self-profiler and prints the hotspot table.
// --worker <canonical> switches the binary into campaign-worker mode: the
// argument is a canonical config string (scenario/config_key.hpp) produced by
// the campaign coordinator; the process runs exactly that cell and emits
// line-delimited JSON frames (heartbeats + one rmacsim-cell-v1 result) on
// stdout — see docs/campaign.md.  --worker-heartbeat sets the frame cadence.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign/worker.hpp"
#include "scenario/experiment.hpp"

using namespace rmacsim;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--protocol rmac|bmmm|dcf|bmw|mx|lamm] "
               "[--mobility stationary|speed1|speed2]\n"
               "          [--rate pps] [--packets n] [--seed n] [--nodes n]\n"
               "          [--ber p] [--capture ratio] [--no-rbt] [--queue-limit n]\n"
               "          [--audit] [--digest] [--obs] [--obs-dir DIR]\n"
               "          [--metrics] [--metrics-dir DIR] [--profile]\n"
               "          [--shards n] [--shard-threads n] [--lookahead-us us]\n"
               "          [--shard-partition stripes|grid|rcb] [--shard-grid RxC]\n"
               "          [--shard-pin] [--telemetry] [--progress sec]\n"
               "          [--payload bytes] [--area WxH]\n"
               "       %s --worker CANONICAL [--worker-heartbeat sec]\n",
               argv0, argv0);
  std::exit(2);
}

Protocol parse_protocol(const std::string& s, const char* argv0) {
  if (s == "rmac") return Protocol::kRmac;
  if (s == "bmmm") return Protocol::kBmmm;
  if (s == "dcf") return Protocol::kDcf;
  if (s == "bmw") return Protocol::kBmw;
  if (s == "mx") return Protocol::kMx;
  if (s == "lamm") return Protocol::kLamm;
  usage(argv0);
}

MobilityScenario parse_mobility(const std::string& s, const char* argv0) {
  if (s == "stationary") return MobilityScenario::kStationary;
  if (s == "speed1") return MobilityScenario::kSpeed1;
  if (s == "speed2") return MobilityScenario::kSpeed2;
  usage(argv0);
}

ShardPartition parse_partition(const std::string& s) {
  if (s == "stripes") return ShardPartition::kStripes;
  if (s == "grid") return ShardPartition::kGrid;
  if (s == "rcb") return ShardPartition::kRcb;
  std::fprintf(stderr,
               "error: unknown --shard-partition '%s' (valid values: stripes, grid, rcb)\n",
               s.c_str());
  std::exit(2);
}

// Parse "RxC" (e.g. "2x4", also accepting 'X'); both factors must be >= 1.
void parse_grid(const std::string& s, unsigned& rows, unsigned& cols) {
  const std::size_t x = s.find_first_of("xX");
  char* end = nullptr;
  long r = 0;
  long c = 0;
  if (x != std::string::npos && x > 0 && x + 1 < s.size()) {
    r = std::strtol(s.c_str(), &end, 10);
    const bool r_ok = end == s.c_str() + x;
    c = std::strtol(s.c_str() + x + 1, &end, 10);
    if (r_ok && *end == '\0' && r >= 1 && c >= 1) {
      rows = static_cast<unsigned>(r);
      cols = static_cast<unsigned>(c);
      return;
    }
  }
  std::fprintf(stderr,
               "error: bad --shard-grid '%s' (expected RxC with R,C >= 1, e.g. 2x4)\n",
               s.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig c;
  c.num_packets = 300;
  bool shards_explicit = false;
  bool grid_explicit = false;
  std::string worker_canonical;
  WorkerOptions worker_opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--worker") {
      worker_canonical = next();
    } else if (arg == "--worker-heartbeat") {
      worker_opts.heartbeat_interval_s = std::atof(next());
    } else if (arg == "--protocol") {
      c.protocol = parse_protocol(next(), argv[0]);
    } else if (arg == "--mobility") {
      c.mobility = parse_mobility(next(), argv[0]);
    } else if (arg == "--rate") {
      c.rate_pps = std::atof(next());
    } else if (arg == "--packets") {
      c.num_packets = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--seed") {
      c.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--nodes") {
      c.num_nodes = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--payload") {
      c.payload_bytes = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--area") {
      const char* spec = next();
      double w = 0.0;
      double h = 0.0;
      if (std::sscanf(spec, "%lfx%lf", &w, &h) != 2 || w <= 0.0 || h <= 0.0) {
        std::fprintf(stderr, "error: --area expects WxH in metres, e.g. 500x300\n");
        return 2;
      }
      c.area.width = w;
      c.area.height = h;
    } else if (arg == "--ber") {
      c.phy.bit_error_rate = std::atof(next());
    } else if (arg == "--capture") {
      c.phy.capture_ratio = std::atof(next());
    } else if (arg == "--queue-limit") {
      c.mac.queue_limit = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--no-rbt") {
      c.rbt_protection = false;
    } else if (arg == "--audit") {
      c.audit = true;
    } else if (arg == "--digest") {
      c.trace_digest = true;
    } else if (arg == "--obs") {
      c.obs.record = true;
      c.obs.out_dir.clear();
    } else if (arg == "--obs-dir") {
      c.obs.record = true;
      c.obs.out_dir = next();
    } else if (arg == "--metrics") {
      c.metrics.enabled = true;
      c.metrics.out_dir.clear();
    } else if (arg == "--metrics-dir") {
      c.metrics.enabled = true;
      c.metrics.out_dir = next();
    } else if (arg == "--profile") {
      c.profile = true;
    } else if (arg == "--shards") {
      c.shards = static_cast<unsigned>(std::atoi(next()));
      shards_explicit = true;
    } else if (arg == "--shard-threads") {
      c.shard_threads = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--lookahead-us") {
      c.shard_lookahead_floor = SimTime::us(std::atoll(next()));
    } else if (arg == "--shard-partition") {
      c.shard_partition = parse_partition(next());
    } else if (arg == "--shard-grid") {
      parse_grid(next(), c.shard_grid_rows, c.shard_grid_cols);
      c.shard_partition = ShardPartition::kGrid;
      grid_explicit = true;
    } else if (arg == "--shard-pin") {
      c.shard_pin_workers = true;
    } else if (arg == "--telemetry") {
      c.obs.window_telemetry = true;
    } else if (arg == "--progress") {
      c.progress.interval_s = std::atof(next());
    } else {
      usage(argv[0]);
    }
  }

  // Worker mode ignores every other flag: the canonical string IS the config.
  if (!worker_canonical.empty()) {
    return run_worker_cell(worker_canonical, worker_opts, stdout);
  }

  // Flag cross-validation: the grid shape fixes the shard count; an explicit
  // --shards that disagrees would otherwise win or lose silently depending on
  // flag order.
  if (grid_explicit) {
    const unsigned grid_shards = c.shard_grid_rows * c.shard_grid_cols;
    if (shards_explicit && c.shards != grid_shards) {
      std::fprintf(stderr,
                   "error: --shards %u contradicts --shard-grid %ux%u (= %u shards); "
                   "drop --shards or make them agree\n",
                   c.shards, c.shard_grid_rows, c.shard_grid_cols, grid_shards);
      return 2;
    }
    c.shards = grid_shards;
  }
  if (c.shards == 0) {
    std::fprintf(stderr, "error: --shards must be >= 1\n");
    return 2;
  }
  if (c.progress.interval_s < 0.0) {
    std::fprintf(stderr, "error: --progress interval must be positive\n");
    return 2;
  }
  if (c.obs.window_telemetry && c.shards == 1) {
    std::fprintf(stderr,
                 "warning: --telemetry is a no-op without --shards > 1 "
                 "(window telemetry instruments the sharded engine)\n");
  }

  std::printf("running %s...\n", c.label().c_str());
  const ExperimentResult r = run_experiment(c);

  std::printf("\n%-28s %s\n", "experiment", c.label().c_str());
  std::printf("%-28s %llu nodes, %u packets @ %.0f/s\n", "workload",
              static_cast<unsigned long long>(c.num_nodes), c.num_packets, c.rate_pps);
  std::printf("%-28s %.4f (%llu/%llu)\n", "delivery ratio (Fig. 7)", r.delivery_ratio,
              static_cast<unsigned long long>(r.delivered),
              static_cast<unsigned long long>(r.expected));
  std::printf("%-28s %.4f\n", "drop ratio (Fig. 8)", r.avg_drop_ratio);
  std::printf("%-28s %.4f s (p99 %.4f s)\n", "e2e delay (Fig. 9)", r.avg_delay_s,
              r.p99_delay_s);
  std::printf("%-28s %.4f\n", "retransmission ratio (Fig.10)", r.avg_retx_ratio);
  std::printf("%-28s %.4f\n", "tx overhead ratio (Fig. 11)", r.avg_txoh_ratio);
  if (r.mrts_len_avg > 0.0) {
    std::printf("%-28s %.1f B (p99 %.0f, max %.0f)\n", "MRTS length (Fig. 12)",
                r.mrts_len_avg, r.mrts_len_p99, r.mrts_len_max);
    std::printf("%-28s %.5f (p99 %.5f, max %.5f)\n", "MRTS abort ratio (Fig. 13)",
                r.abort_avg, r.abort_p99, r.abort_max);
  }
  std::printf("%-28s avg %.2f hops (p99 %.0f), %.2f children (p99 %.0f)\n",
              "tree (§4.1.1)", r.tree_hops_avg, r.tree_hops_p99, r.tree_children_avg,
              r.tree_children_p99);
  std::printf("%-28s %.4f\n", "MAC-believed success", r.mac_believed_success);
  std::printf("%-28s %llu\n", "simulator events",
              static_cast<unsigned long long>(r.events_executed));

  // Loss ledger: where every expected reception that did not arrive went.
  std::uint64_t queue_drop_receptions = 0;
  std::printf("%-28s %llu expected = %llu delivered + %llu dropped%s\n", "loss ledger",
              static_cast<unsigned long long>(r.ledger.expected),
              static_cast<unsigned long long>(r.ledger.delivered),
              static_cast<unsigned long long>(r.ledger.total_dropped()),
              r.ledger.conservation_ok() ? " [conserved]" : " [LEAK]");
  for (std::size_t i = 1; i < kDropReasonCount; ++i) {
    const std::uint64_t n = r.ledger.dropped[i];
    if (n == 0) continue;
    if (static_cast<DropReason>(i) == DropReason::kQueueOverflow) queue_drop_receptions = n;
    std::printf("%-28s   %-16s %llu\n", "", to_string(static_cast<DropReason>(i)),
                static_cast<unsigned long long>(n));
  }
  std::printf("%-28s %llu reception(s)\n", "queue drops",
              static_cast<unsigned long long>(queue_drop_receptions));
  if (c.audit) {
    std::printf("%-28s %llu violation(s)\n", "audit",
                static_cast<unsigned long long>(r.audit.total));
  }
  if (c.trace_digest) std::printf("%-28s %016llx\n", "trace digest",
                                  static_cast<unsigned long long>(r.trace_digest));
  if (r.shard.shards > 0) {
    std::printf("%-28s %u shards x %u threads, tau %.1f us, window %.1f us\n",
                "sharded engine", r.shard.shards, r.shard.threads,
                r.shard.tau.to_seconds() * 1e6, r.shard.window.to_seconds() * 1e6);
    std::printf("%-28s %llu windows, %llu messages, %llu mirrors, %llu clamped\n", "",
                static_cast<unsigned long long>(r.shard.windows),
                static_cast<unsigned long long>(r.shard.messages),
                static_cast<unsigned long long>(r.shard.remote_mirrors),
                static_cast<unsigned long long>(r.shard.clamped));
    if (r.shard.grid_rows > 0) {
      std::printf("%-28s %s %ux%u, nodes/shard [", "partition",
                  to_string(r.shard.partition), r.shard.grid_rows, r.shard.grid_cols);
    } else {
      std::printf("%-28s %s, nodes/shard [", "partition", to_string(r.shard.partition));
    }
    for (std::size_t s = 0; s < r.shard.node_counts.size(); ++s) {
      std::printf("%s%u", s == 0 ? "" : " ", r.shard.node_counts[s]);
    }
    std::printf("]\n");
    if (r.shard.telemetry) {
      std::printf("%-28s imbalance %.2f busy / %.2f events, speedup bound %.2fx\n",
                  "window telemetry", r.shard.imbalance_busy, r.shard.imbalance_events,
                  r.shard.speedup_bound_busy);
      std::printf("%-28s msgs tx_begin %llu, tx_abort %llu, tone_on %llu, tone_off %llu; "
                  "%llu phantom refreshes\n",
                  "",
                  static_cast<unsigned long long>(r.shard.messages_by_kind[0]),
                  static_cast<unsigned long long>(r.shard.messages_by_kind[1]),
                  static_cast<unsigned long long>(r.shard.messages_by_kind[2]),
                  static_cast<unsigned long long>(r.shard.messages_by_kind[3]),
                  static_cast<unsigned long long>(r.shard.phantom_refreshes));
      std::printf("%-28s events/shard [", "");
      for (std::size_t s = 0; s < r.shard.window_events.size(); ++s) {
        std::printf("%s%llu", s == 0 ? "" : " ",
                    static_cast<unsigned long long>(r.shard.window_events[s]));
      }
      std::printf("]\n");
    }
  }
  if (c.obs.record) {
    std::printf("%-28s %llu journeys, %llu events, %llu samples\n", "flight recorder",
                static_cast<unsigned long long>(r.obs.journeys),
                static_cast<unsigned long long>(r.obs.journey_events),
                static_cast<unsigned long long>(r.obs.samples));
    if (!r.obs.trace_json.empty()) {
      std::printf("%-28s %.1f ms\n", "artifact export", r.obs.export_ms);
      std::printf("%-28s %s\n", "", r.obs.trace_json.c_str());
      std::printf("%-28s %s\n", "", r.obs.journeys_jsonl.c_str());
      if (!r.obs.timeseries_csv.empty()) {
        std::printf("%-28s %s\n", "", r.obs.timeseries_csv.c_str());
      }
      if (!r.obs.telemetry_json.empty()) {
        std::printf("%-28s %s\n", "", r.obs.telemetry_json.c_str());
      }
      std::printf("%-28s %s\n", "", r.obs.manifest_json.c_str());
    }
  }
  if (c.metrics.enabled) {
    std::printf("%-28s %llu series, conservation %s\n", "metrics snapshot",
                static_cast<unsigned long long>(r.metrics.series),
                r.metrics.conservation_ok ? "ok" : "FAILED");
    if (!r.metrics.text_path.empty()) {
      std::printf("%-28s %s\n", "", r.metrics.text_path.c_str());
      std::printf("%-28s %s\n", "", r.metrics.json_path.c_str());
    }
  }
  if (c.profile) {
    std::printf("%-28s %.2f s wall, %.0f events/s\n", "profile", r.profile.wall_s,
                r.profile.events_per_sec);
    const std::size_t top = r.profile.report.sections.size() < 8
                                ? r.profile.report.sections.size()
                                : 8;
    for (std::size_t i = 0; i < top; ++i) {
      const auto& s = r.profile.report.sections[i];
      std::printf("%-28s   %-24s %8.2f ms self, %8.2f ms total, %llu calls\n", "",
                  s.name.c_str(), static_cast<double>(s.self_ns) / 1e6,
                  static_cast<double>(s.total_ns) / 1e6,
                  static_cast<unsigned long long>(s.calls));
    }
  }
  return 0;
}
