// Frame-level trace of the Fig. 4 sequence — now with a forced recovery:
// node A reliably multicasts to nodes B and C, and a scripted PHY corrupts
// C's copy of the first data frame.  A's WF_ABT scan then sees B's ABT pulse
// in slot 0 but silence in C's slot 1, so A rebuilds the MRTS for {C} alone
// and retransmits (§3.3.2 step 7).
//
// Every PHY/tone/MAC record is still pretty-printed live, but the story is
// *also* reconstructed after the fact by a FlightRecorder journey — the same
// causal timeline tooling `run_experiment --obs-dir` writes to disk — and
// printed as a post-mortem, demonstrating that the rebuild chain is fully
// recoverable from trace records alone.
#include <cstdio>
#include <memory>

#include "mac/rmac/rmac_protocol.hpp"
#include "obs/flight_recorder.hpp"
#include "phy/scripted_medium.hpp"
#include "phy/tone_channel.hpp"

using namespace rmacsim;

namespace {

char node_name(NodeId id) { return id <= 2 ? static_cast<char>('A' + id) : '?'; }

void print_post_mortem(const Journey& j) {
  std::printf("journey %llu (origin %c, seq %u): %u deliveries, %zu events\n",
              static_cast<unsigned long long>(j.id), node_name(j.origin), j.seq,
              j.deliveries, j.events.size());
  const SimTime t0 = j.first_seen;
  for (const JourneyEvent& e : j.events) {
    std::printf("  [+%9.2f us] node %c  %-9s", (e.at - t0).to_us(),
                node_name(e.node), to_string(e.kind));
    switch (e.kind) {
      case JourneyEventKind::kTxStart:
        std::printf("  %s (%u B)", to_string(e.frame_type), e.wire_bytes);
        if (e.attempt > 0) std::printf("  attempt %u", e.attempt);
        if (!e.receivers.empty()) {
          std::printf("  -> {");
          for (std::size_t i = 0; i < e.receivers.size(); ++i)
            std::printf("%s%c", i ? ", " : "", node_name(e.receivers[i]));
          std::printf("}");
        }
        break;
      case JourneyEventKind::kTxEnd:
      case JourneyEventKind::kTxAbort:
      case JourneyEventKind::kFrameRx:
        std::printf("  %s", to_string(e.frame_type));
        break;
      case JourneyEventKind::kAbtPulse:
        std::printf("  slot %d", e.slot);
        break;
      default:
        break;
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  Tracer tracer;
  tracer.set_sink([](const TraceRecord& r) {
    std::printf("[%9.2f us] %-9s node %c  %s\n", r.at.to_us(),
                std::string(to_string(r.category)).c_str(), node_name(r.node),
                r.message.c_str());
  });
  FlightRecorder recorder{tracer};

  Scheduler sched;
  ScriptedMedium medium{sched, PhyParams{}, Rng{3}, &tracer};
  ToneChannel rbt{sched, medium.params(), "RBT", &tracer};
  ToneChannel abt{sched, medium.params(), "ABT", &tracer};

  struct Silent final : MacUpper {
    void mac_deliver(const Frame&) override {}
  } upper;

  std::vector<std::unique_ptr<StationaryMobility>> mobs;
  std::vector<std::unique_ptr<Radio>> radios;
  std::vector<std::unique_ptr<RmacProtocol>> macs;
  const Vec2 positions[] = {{0, 0}, {50, 0}, {0, 50}};  // A, B, C
  for (NodeId id = 0; id < 3; ++id) {
    mobs.push_back(std::make_unique<StationaryMobility>(positions[id]));
    radios.push_back(std::make_unique<Radio>(medium, id, *mobs.back()));
    rbt.attach(id, *mobs.back());
    abt.attach(id, *mobs.back());
    macs.push_back(std::make_unique<RmacProtocol>(sched, *radios.back(), rbt, abt,
                                                  Rng{id + 40},
                                                  RmacProtocol::Params{MacParams{}, true},
                                                  &tracer));
    macs.back()->set_upper(&upper);
  }

  // Corrupt C's copy of the first reliable-data frame: B pulses ABT in its
  // slot, C's slot stays silent, and A must rebuild the MRTS for {C}.
  medium.drop_next(/*rx=*/2, FrameType::kReliableData, /*count=*/1);

  std::printf("Fig. 4 replay with a scripted loss: A multicasts one reliable "
              "500 B frame to {B, C};\nC's copy of the data frame is corrupted.\n"
              "expected: MRTS{B,C} -> DATA -> ABT(B) only -> rebuilt MRTS{C} "
              "-> DATA -> ABT(C)\n\n");
  auto pkt = std::make_shared<AppPacket>();
  pkt->origin = 0;
  pkt->seq = 1;
  pkt->payload_bytes = 500;
  pkt->journey = make_journey(pkt->origin, pkt->seq);
  macs[0]->reliable_send(pkt, {1, 2});
  sched.run_until(SimTime::ms(20));

  std::printf("\n--- flight-recorder post-mortem "
              "(reconstructed from trace records alone) ---\n");
  if (const Journey* j = recorder.find(make_journey(0, 1))) print_post_mortem(*j);
  return 0;
}
