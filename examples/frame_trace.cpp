// Frame-level trace of the Fig. 4 sequence: node A reliably multicasts to
// nodes B and C; every PHY transmission, busy-tone edge, and MAC state
// transition is printed with its timestamp — a direct, inspectable replay
// of the paper's protocol walkthrough.
#include <cstdio>
#include <memory>

#include "mac/rmac/rmac_protocol.hpp"
#include "phy/medium.hpp"
#include "phy/tone_channel.hpp"

using namespace rmacsim;

int main() {
  Tracer tracer;
  tracer.set_sink([](const TraceRecord& r) {
    const char node_name = r.node <= 2 ? static_cast<char>('A' + r.node) : '?';
    std::printf("[%9.2f us] %-9s node %c  %s\n", r.at.to_us(),
                std::string(to_string(r.category)).c_str(), node_name, r.message.c_str());
  });

  Scheduler sched;
  Medium medium{sched, PhyParams{}, Rng{3}, &tracer};
  ToneChannel rbt{sched, medium.params(), "RBT", &tracer};
  ToneChannel abt{sched, medium.params(), "ABT", &tracer};

  struct Silent final : MacUpper {
    void mac_deliver(const Frame&) override {}
  } upper;

  std::vector<std::unique_ptr<StationaryMobility>> mobs;
  std::vector<std::unique_ptr<Radio>> radios;
  std::vector<std::unique_ptr<RmacProtocol>> macs;
  const Vec2 positions[] = {{0, 0}, {50, 0}, {0, 50}};  // A, B, C
  for (NodeId id = 0; id < 3; ++id) {
    mobs.push_back(std::make_unique<StationaryMobility>(positions[id]));
    radios.push_back(std::make_unique<Radio>(medium, id, *mobs.back()));
    rbt.attach(id, *mobs.back());
    abt.attach(id, *mobs.back());
    macs.push_back(std::make_unique<RmacProtocol>(sched, *radios.back(), rbt, abt,
                                                  Rng{id + 40},
                                                  RmacProtocol::Params{MacParams{}, true},
                                                  &tracer));
    macs.back()->set_upper(&upper);
  }

  std::printf("Fig. 4 replay: A multicasts one reliable 500 B frame to {B, C}\n");
  std::printf("expected: MRTS -> RBTs on -> DATA -> RBTs off -> ABT(B) then ABT(C)\n\n");
  auto pkt = std::make_shared<AppPacket>();
  pkt->origin = 0;
  pkt->seq = 1;
  pkt->payload_bytes = 500;
  macs[0]->reliable_send(pkt, {1, 2});
  sched.run_until(SimTime::ms(20));
  return 0;
}
