// Quickstart: build a four-node network by hand, send one reliable
// multicast over RMAC, watch the deliveries and the sender's report, and
// dump the run's flight-recorder artifacts — a Chrome trace_event JSON you
// can open at ui.perfetto.dev and a journeys JSONL for
// tools/journey_report.py.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [outdir]        # artifacts land in outdir (default .)
#include <cstdio>
#include <memory>
#include <string>

#include "mac/rmac/rmac_protocol.hpp"
#include "obs/exporters.hpp"
#include "obs/flight_recorder.hpp"
#include "phy/medium.hpp"
#include "phy/tone_channel.hpp"

using namespace rmacsim;

namespace {

// Upper layer: print what the MAC hands us, and record the delivery so the
// flight recorder can close each journey.
struct PrintingUpper final : MacUpper {
  PrintingUpper(NodeId id, Scheduler& sched, Tracer& tracer)
      : id_{id}, sched_{sched}, tracer_{tracer} {}

  void mac_deliver(const Frame& frame) override {
    std::printf("[%8.1f us] node %u received %s seq=%u (%zu B payload)\n",
                sched_.now().to_us(), id_, to_string(frame.type), frame.seq,
                frame.packet ? frame.packet->payload_bytes : 0);
    if (tracer_.wants(TraceCategory::kApp)) {
      TraceRecord r{sched_.now(), TraceCategory::kApp, id_, {}};
      r.event = TraceEvent::kDeliver;
      r.journey = frame.journey;
      tracer_.emit(std::move(r));
    }
  }
  void mac_reliable_done(const ReliableSendResult& r) override {
    std::printf("[%8.1f us] node %u: reliable send %s after %u transmission(s)\n",
                sched_.now().to_us(), id_, r.success ? "SUCCEEDED" : "FAILED",
                r.transmissions);
  }

private:
  NodeId id_;
  Scheduler& sched_;
  Tracer& tracer_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string outdir = argc > 1 ? argv[1] : ".";

  // 1. The simulation substrate: scheduler, data channel, two tone channels,
  //    plus a tracer with a flight recorder attached so the run leaves a
  //    causal record behind.
  Scheduler sched;
  Tracer tracer;
  FlightRecorder recorder{tracer};
  Medium medium{sched, PhyParams{}, Rng{2026}, &tracer};
  ToneChannel rbt{sched, medium.params(), "RBT", &tracer};
  ToneChannel abt{sched, medium.params(), "ABT", &tracer};

  // 2. Four stationary nodes: a sender at the origin, three receivers.
  struct NodeKit {
    std::unique_ptr<StationaryMobility> mob;
    std::unique_ptr<Radio> radio;
    std::unique_ptr<RmacProtocol> mac;
    std::unique_ptr<PrintingUpper> upper;
  };
  std::vector<NodeKit> nodes;
  const Vec2 positions[] = {{0, 0}, {40, 0}, {0, 40}, {-40, 0}};
  for (NodeId id = 0; id < 4; ++id) {
    NodeKit kit;
    kit.mob = std::make_unique<StationaryMobility>(positions[id]);
    kit.radio = std::make_unique<Radio>(medium, id, *kit.mob);
    rbt.attach(id, *kit.mob);
    abt.attach(id, *kit.mob);
    kit.mac = std::make_unique<RmacProtocol>(sched, *kit.radio, rbt, abt, Rng{id + 1},
                                             RmacProtocol::Params{MacParams{}, true},
                                             &tracer);
    kit.upper = std::make_unique<PrintingUpper>(id, sched, tracer);
    kit.mac->set_upper(kit.upper.get());
    nodes.push_back(std::move(kit));
  }

  // 3. One 500-byte packet, reliably multicast from node 0 to nodes 1-3.
  auto pkt = std::make_shared<AppPacket>();
  pkt->origin = 0;
  pkt->seq = 1;
  pkt->payload_bytes = 500;
  pkt->created = sched.now();
  pkt->journey = make_journey(pkt->origin, pkt->seq);
  std::printf("node 0 multicasts seq=1 reliably to {1, 2, 3}...\n");
  nodes[0].mac->reliable_send(pkt, {1, 2, 3});

  // 4. Run and inspect the MAC statistics.
  sched.run_until(SimTime::ms(50));
  const MacStats& s = nodes[0].mac->stats();
  std::printf("\nsender stats: %llu MRTS (%0.0f B first), %llu retransmissions, "
              "control airtime %.0f us, data airtime %.0f us\n",
              static_cast<unsigned long long>(s.mrts_transmissions),
              s.mrts_lengths_bytes.empty() ? 0.0 : s.mrts_lengths_bytes.front(),
              static_cast<unsigned long long>(s.retransmissions),
              s.control_tx_time.to_us(), s.reliable_data_tx_time.to_us());

  // 5. Export the flight-recorder artifacts.  Open the trace at
  //    ui.perfetto.dev; post-mortem the JSONL with tools/journey_report.py.
  const std::string trace_path = outdir + "/quickstart_trace.json";
  const std::string journeys_path = outdir + "/quickstart_journeys.jsonl";
  if (write_chrome_trace(trace_path, recorder) &&
      write_journeys_jsonl(journeys_path, recorder)) {
    std::printf("wrote %s and %s (%llu journey(s), %llu event(s))\n",
                trace_path.c_str(), journeys_path.c_str(),
                static_cast<unsigned long long>(recorder.journeys().size()),
                static_cast<unsigned long long>(recorder.total_events()));
  } else {
    std::fprintf(stderr, "failed to write flight-recorder artifacts to %s\n",
                 outdir.c_str());
    return 1;
  }
  return 0;
}
