// Quickstart: build a four-node network by hand, send one reliable
// multicast over RMAC, and watch the deliveries and the sender's report.
//
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "mac/rmac/rmac_protocol.hpp"
#include "phy/medium.hpp"
#include "phy/tone_channel.hpp"

using namespace rmacsim;

namespace {

// Upper layer: print what the MAC hands us.
struct PrintingUpper final : MacUpper {
  explicit PrintingUpper(NodeId id, Scheduler& sched) : id_{id}, sched_{sched} {}

  void mac_deliver(const Frame& frame) override {
    std::printf("[%8.1f us] node %u received %s seq=%u (%zu B payload)\n",
                sched_.now().to_us(), id_, to_string(frame.type), frame.seq,
                frame.packet ? frame.packet->payload_bytes : 0);
  }
  void mac_reliable_done(const ReliableSendResult& r) override {
    std::printf("[%8.1f us] node %u: reliable send %s after %u transmission(s)\n",
                sched_.now().to_us(), id_, r.success ? "SUCCEEDED" : "FAILED",
                r.transmissions);
  }

private:
  NodeId id_;
  Scheduler& sched_;
};

}  // namespace

int main() {
  // 1. The simulation substrate: scheduler, data channel, two tone channels.
  Scheduler sched;
  Medium medium{sched, PhyParams{}, Rng{2026}};
  ToneChannel rbt{sched, medium.params(), "RBT"};
  ToneChannel abt{sched, medium.params(), "ABT"};

  // 2. Four stationary nodes: a sender at the origin, three receivers.
  struct NodeKit {
    std::unique_ptr<StationaryMobility> mob;
    std::unique_ptr<Radio> radio;
    std::unique_ptr<RmacProtocol> mac;
    std::unique_ptr<PrintingUpper> upper;
  };
  std::vector<NodeKit> nodes;
  const Vec2 positions[] = {{0, 0}, {40, 0}, {0, 40}, {-40, 0}};
  for (NodeId id = 0; id < 4; ++id) {
    NodeKit kit;
    kit.mob = std::make_unique<StationaryMobility>(positions[id]);
    kit.radio = std::make_unique<Radio>(medium, id, *kit.mob);
    rbt.attach(id, *kit.mob);
    abt.attach(id, *kit.mob);
    kit.mac = std::make_unique<RmacProtocol>(sched, *kit.radio, rbt, abt, Rng{id + 1},
                                             RmacProtocol::Params{MacParams{}, true});
    kit.upper = std::make_unique<PrintingUpper>(id, sched);
    kit.mac->set_upper(kit.upper.get());
    nodes.push_back(std::move(kit));
  }

  // 3. One 500-byte packet, reliably multicast from node 0 to nodes 1-3.
  auto pkt = std::make_shared<AppPacket>();
  pkt->origin = 0;
  pkt->seq = 1;
  pkt->payload_bytes = 500;
  pkt->created = sched.now();
  std::printf("node 0 multicasts seq=1 reliably to {1, 2, 3}...\n");
  nodes[0].mac->reliable_send(pkt, {1, 2, 3});

  // 4. Run and inspect the MAC statistics.
  sched.run_until(SimTime::ms(50));
  const MacStats& s = nodes[0].mac->stats();
  std::printf("\nsender stats: %llu MRTS (%0.0f B first), %llu retransmissions, "
              "control airtime %.0f us, data airtime %.0f us\n",
              static_cast<unsigned long long>(s.mrts_transmissions),
              s.mrts_lengths_bytes.empty() ? 0.0 : s.mrts_lengths_bytes.front(),
              static_cast<unsigned long long>(s.retransmissions),
              s.control_tx_time.to_us(), s.reliable_data_tx_time.to_us());
  return 0;
}
