// Emergency-rescue scenario (§1): responders move through the field under
// the random-waypoint model while a coordinator multicasts situation
// updates.  Runs the same mobile workload over RMAC and BMMM on identical
// placements and prints the head-to-head comparison of Figs. 7-11.
//
//   ./build/examples/rescue_mobility [packets] [rate_pps]
#include <cstdio>
#include <cstdlib>

#include "scenario/parallel_runner.hpp"

using namespace rmacsim;

int main(int argc, char** argv) {
  const std::uint32_t packets =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 300;
  const double rate = argc > 2 ? std::atof(argv[2]) : 20.0;

  std::vector<ExperimentConfig> configs;
  for (const Protocol proto : {Protocol::kRmac, Protocol::kBmmm}) {
    for (const MobilityScenario mob :
         {MobilityScenario::kSpeed1, MobilityScenario::kSpeed2}) {
      ExperimentConfig c;
      c.protocol = proto;
      c.mobility = mob;
      c.num_packets = packets;
      c.rate_pps = rate;
      c.seed = 11;
      configs.push_back(c);
    }
  }

  std::printf("rescue scenario: 75 responders, random waypoint, %u updates at %.0f/s\n",
              packets, rate);
  std::printf("  speed1: 0-4 m/s, pause 10 s    speed2: 0-8 m/s, pause 5 s\n\n");
  const auto results = run_experiments(configs);

  std::printf("%-8s %-8s %10s %10s %10s %10s\n", "proto", "mobility", "R_deliv", "delay(s)",
              "R_retx", "R_txoh");
  for (const auto& r : results) {
    std::printf("%-8s %-8s %10.4f %10.3f %10.3f %10.3f\n", to_string(r.config.protocol),
                to_string(r.config.mobility), r.delivery_ratio, r.avg_delay_s,
                r.avg_retx_ratio, r.avg_txoh_ratio);
  }
  std::printf("\npaper (Figs. 7-11): under mobility RMAC's delivery drops to ~0.75 but\n"
              "stays well above BMMM's, at a fraction of the control overhead.\n");
  return 0;
}
