// Battlefield scenario (the paper's motivating use case, §1): a stationary
// 75-node ad hoc network on a 500 m x 300 m field; a command node (id 0)
// disseminates orders to every unit along a BLESS-lite multicast tree using
// RMAC's Reliable Send, and we report delivery, delay, and overhead.
//
//   ./build/examples/battlefield_multicast [packets] [rate_pps] [seed]
#include <cstdio>
#include <cstdlib>

#include "scenario/experiment.hpp"

using namespace rmacsim;

int main(int argc, char** argv) {
  ExperimentConfig c;
  c.protocol = Protocol::kRmac;
  c.mobility = MobilityScenario::kStationary;
  c.num_packets = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 500;
  c.rate_pps = argc > 2 ? std::atof(argv[2]) : 20.0;
  c.seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 7;

  std::printf("battlefield dissemination: 75 nodes, 500x300 m, %u orders at %.0f/s "
              "(seed %llu)\n\n",
              c.num_packets, c.rate_pps, static_cast<unsigned long long>(c.seed));
  const ExperimentResult r = run_experiment(c);

  std::printf("tree:     avg %.2f hops to command (p99 %.0f), avg %.2f units per squad "
              "leader (p99 %.0f)\n",
              r.tree_hops_avg, r.tree_hops_p99, r.tree_children_avg, r.tree_children_p99);
  std::printf("delivery: %llu/%llu receptions (R_deliv = %.4f)\n",
              static_cast<unsigned long long>(r.delivered),
              static_cast<unsigned long long>(r.expected), r.delivery_ratio);
  std::printf("latency:  avg %.3f s, p99 %.3f s\n", r.avg_delay_s, r.p99_delay_s);
  std::printf("overhead: R_retx %.3f, R_txoh %.3f, R_drop %.4f\n", r.avg_retx_ratio,
              r.avg_txoh_ratio, r.avg_drop_ratio);
  std::printf("MRTS:     avg %.1f B, p99 %.0f B, max %.0f B; abort ratio avg %.5f\n",
              r.mrts_len_avg, r.mrts_len_p99, r.mrts_len_max, r.abort_avg);
  std::printf("\n(%llu simulator events)\n",
              static_cast<unsigned long long>(r.events_executed));
  return 0;
}
